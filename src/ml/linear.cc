#include "ml/linear.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "common/stats.h"

namespace modis {

namespace {

/// Column means and standard deviations (1 where degenerate).
void Standardize(const Matrix& x, std::vector<double>* mean,
                 std::vector<double>* scale) {
  const size_t n = x.rows(), d = x.cols();
  mean->assign(d, 0.0);
  scale->assign(d, 1.0);
  if (n == 0) return;
  for (size_t r = 0; r < n; ++r) {
    const double* row = x.Row(r);
    for (size_t c = 0; c < d; ++c) (*mean)[c] += row[c];
  }
  for (double& m : *mean) m /= static_cast<double>(n);
  std::vector<double> var(d, 0.0);
  for (size_t r = 0; r < n; ++r) {
    const double* row = x.Row(r);
    for (size_t c = 0; c < d; ++c) {
      const double dlt = row[c] - (*mean)[c];
      var[c] += dlt * dlt;
    }
  }
  for (size_t c = 0; c < d; ++c) {
    const double s = std::sqrt(var[c] / static_cast<double>(n));
    (*scale)[c] = s > 1e-12 ? s : 1.0;
  }
}

}  // namespace

Status RidgeRegressor::Fit(const MlDataset& train, Rng* /*rng*/) {
  if (train.task != TaskKind::kRegression) {
    return Status::InvalidArgument("RidgeRegressor needs a regression dataset");
  }
  const size_t n = train.num_rows(), d = train.num_features();
  if (n == 0) return Status::InvalidArgument("RidgeRegressor: empty data");

  std::vector<double> mean, scale;
  Standardize(train.x, &mean, &scale);
  const double y_mean =
      std::accumulate(train.y.begin(), train.y.end(), 0.0) /
      static_cast<double>(n);

  // Standardized, centered design matrix.
  Matrix z(n, d);
  std::vector<double> yc(n);
  for (size_t r = 0; r < n; ++r) {
    const double* row = train.x.Row(r);
    double* zr = z.Row(r);
    for (size_t c = 0; c < d; ++c) zr[c] = (row[c] - mean[c]) / scale[c];
    yc[r] = train.y[r] - y_mean;
  }
  Matrix gram = z.Gram();
  for (size_t c = 0; c < d; ++c) {
    gram.At(c, c) += l2_ * static_cast<double>(n) + 1e-9;
  }
  MODIS_ASSIGN_OR_RETURN(std_coef_, CholeskySolve(gram, z.TransposeTimes(yc)));

  // Back-transform to original units.
  coef_.assign(d, 0.0);
  intercept_ = y_mean;
  for (size_t c = 0; c < d; ++c) {
    coef_[c] = std_coef_[c] / scale[c];
    intercept_ -= coef_[c] * mean[c];
  }
  return Status::OK();
}

std::vector<double> RidgeRegressor::Predict(const Matrix& x) const {
  MODIS_CHECK(!coef_.empty() || x.cols() == 0) << "RidgeRegressor not trained";
  std::vector<double> out(x.rows(), intercept_);
  for (size_t r = 0; r < x.rows(); ++r) {
    const double* row = x.Row(r);
    for (size_t c = 0; c < x.cols() && c < coef_.size(); ++c) {
      out[r] += coef_[c] * row[c];
    }
  }
  return out;
}

std::vector<double> RidgeRegressor::FeatureImportance() const {
  std::vector<double> imp(std_coef_.size());
  for (size_t i = 0; i < std_coef_.size(); ++i) imp[i] = std::abs(std_coef_[i]);
  const double total = std::accumulate(imp.begin(), imp.end(), 0.0);
  if (total > 0.0) {
    for (double& v : imp) v /= total;
  }
  return imp;
}

std::unique_ptr<MlModel> RidgeRegressor::Clone() const {
  return std::make_unique<RidgeRegressor>(l2_);
}

Status LogisticRegressor::Fit(const MlDataset& train, Rng* /*rng*/) {
  if (train.task != TaskKind::kClassification) {
    return Status::InvalidArgument(
        "LogisticRegressor needs a classification dataset");
  }
  const size_t n = train.num_rows();
  const size_t d = train.num_features();
  if (n == 0) return Status::InvalidArgument("LogisticRegressor: empty data");
  num_classes_ = train.num_classes;
  num_features_ = d;
  if (num_classes_ < 2) {
    return Status::InvalidArgument("LogisticRegressor: needs >= 2 classes");
  }
  Standardize(train.x, &mean_, &scale_);
  weights_.assign(static_cast<size_t>(num_classes_) * (d + 1), 0.0);

  std::vector<double> z(d);
  std::vector<double> probs(num_classes_);
  std::vector<double> grad(weights_.size());
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    std::fill(grad.begin(), grad.end(), 0.0);
    for (size_t r = 0; r < n; ++r) {
      const double* row = train.x.Row(r);
      for (size_t c = 0; c < d; ++c) z[c] = (row[c] - mean_[c]) / scale_[c];
      // Softmax scores.
      double mx = -1e300;
      for (int k = 0; k < num_classes_; ++k) {
        const double* w = &weights_[k * (d + 1)];
        double s = w[d];
        for (size_t c = 0; c < d; ++c) s += w[c] * z[c];
        probs[k] = s;
        mx = std::max(mx, s);
      }
      double denom = 0.0;
      for (int k = 0; k < num_classes_; ++k) {
        probs[k] = std::exp(probs[k] - mx);
        denom += probs[k];
      }
      for (int k = 0; k < num_classes_; ++k) probs[k] /= denom;
      const int label = static_cast<int>(train.y[r]);
      for (int k = 0; k < num_classes_; ++k) {
        const double err = probs[k] - (k == label ? 1.0 : 0.0);
        double* g = &grad[k * (d + 1)];
        for (size_t c = 0; c < d; ++c) g[c] += err * z[c];
        g[d] += err;
      }
    }
    const double step = options_.learning_rate / static_cast<double>(n);
    for (size_t i = 0; i < weights_.size(); ++i) {
      weights_[i] -= step * (grad[i] + options_.l2 * weights_[i]);
    }
  }
  return Status::OK();
}

std::vector<std::vector<double>> LogisticRegressor::PredictProba(
    const Matrix& x) const {
  MODIS_CHECK(num_classes_ >= 2) << "LogisticRegressor not trained";
  const size_t d = num_features_;
  std::vector<std::vector<double>> out(x.rows(),
                                       std::vector<double>(num_classes_));
  std::vector<double> z(d);
  for (size_t r = 0; r < x.rows(); ++r) {
    const double* row = x.Row(r);
    for (size_t c = 0; c < d; ++c) z[c] = (row[c] - mean_[c]) / scale_[c];
    double mx = -1e300;
    for (int k = 0; k < num_classes_; ++k) {
      const double* w = &weights_[k * (d + 1)];
      double s = w[d];
      for (size_t c = 0; c < d; ++c) s += w[c] * z[c];
      out[r][k] = s;
      mx = std::max(mx, s);
    }
    double denom = 0.0;
    for (int k = 0; k < num_classes_; ++k) {
      out[r][k] = std::exp(out[r][k] - mx);
      denom += out[r][k];
    }
    for (int k = 0; k < num_classes_; ++k) out[r][k] /= denom;
  }
  return out;
}

std::vector<double> LogisticRegressor::Predict(const Matrix& x) const {
  const auto proba = PredictProba(x);
  std::vector<double> out(x.rows());
  for (size_t r = 0; r < x.rows(); ++r) {
    out[r] = static_cast<double>(
        std::max_element(proba[r].begin(), proba[r].end()) - proba[r].begin());
  }
  return out;
}

std::vector<double> LogisticRegressor::FeatureImportance() const {
  std::vector<double> imp(num_features_, 0.0);
  for (int k = 0; k < num_classes_; ++k) {
    const double* w = &weights_[k * (num_features_ + 1)];
    for (size_t c = 0; c < num_features_; ++c) imp[c] += std::abs(w[c]);
  }
  const double total = std::accumulate(imp.begin(), imp.end(), 0.0);
  if (total > 0.0) {
    for (double& v : imp) v /= total;
  }
  return imp;
}

std::unique_ptr<MlModel> LogisticRegressor::Clone() const {
  return std::make_unique<LogisticRegressor>(options_);
}

}  // namespace modis
