#ifndef MODIS_ML_LINEAR_H_
#define MODIS_ML_LINEAR_H_

#include <memory>
#include <vector>

#include "ml/model.h"

namespace modis {

/// Closed-form ridge regression (normal equations + Cholesky) with an
/// unpenalized intercept via feature standardization — the "LRavocado"
/// model of task T3 and the linear proxy used by the H2O-style baseline.
class RidgeRegressor : public MlModel {
 public:
  explicit RidgeRegressor(double l2 = 1e-3) : l2_(l2) {}

  Status Fit(const MlDataset& train, Rng* rng) override;
  std::vector<double> Predict(const Matrix& x) const override;
  /// |standardized coefficient| per feature.
  std::vector<double> FeatureImportance() const override;
  std::unique_ptr<MlModel> Clone() const override;
  const char* Name() const override { return "RidgeRegressor"; }

  const std::vector<double>& coefficients() const { return coef_; }
  double intercept() const { return intercept_; }

 private:
  double l2_;
  std::vector<double> coef_;       // In original feature units.
  std::vector<double> std_coef_;   // In standardized units (importance).
  double intercept_ = 0.0;
};

/// Options for gradient-descent logistic regression.
struct LogisticOptions {
  double learning_rate = 0.1;
  int epochs = 200;
  double l2 = 1e-4;
};

/// Multinomial logistic regression trained by full-batch gradient descent on
/// standardized features.
class LogisticRegressor : public MlModel {
 public:
  explicit LogisticRegressor(LogisticOptions options = {})
      : options_(options) {}

  Status Fit(const MlDataset& train, Rng* rng) override;
  std::vector<double> Predict(const Matrix& x) const override;
  std::vector<std::vector<double>> PredictProba(const Matrix& x) const override;
  std::vector<double> FeatureImportance() const override;
  std::unique_ptr<MlModel> Clone() const override;
  const char* Name() const override { return "LogisticRegressor"; }

 private:
  LogisticOptions options_;
  int num_classes_ = 0;
  size_t num_features_ = 0;
  std::vector<double> mean_, scale_;
  // weights_[k * (d+1) + j]; last column is the bias.
  std::vector<double> weights_;
};

}  // namespace modis

#endif  // MODIS_ML_LINEAR_H_
