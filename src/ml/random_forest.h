#ifndef MODIS_ML_RANDOM_FOREST_H_
#define MODIS_ML_RANDOM_FOREST_H_

#include <memory>
#include <vector>

#include "ml/decision_tree.h"
#include "ml/model.h"

namespace modis {

/// Hyperparameters for the random forest models.
struct ForestOptions {
  int num_trees = 40;
  TreeOptions tree;
  /// Bootstrap sample fraction per tree.
  double subsample = 1.0;
};

/// Bagged ensemble of Gini CART trees with sqrt-feature subsampling — the
/// "RFhouse" model of task T2 and the case-study peak classifier.
class RandomForestClassifier : public MlModel {
 public:
  explicit RandomForestClassifier(ForestOptions options = {});

  Status Fit(const MlDataset& train, Rng* rng) override;
  std::vector<double> Predict(const Matrix& x) const override;
  std::vector<std::vector<double>> PredictProba(const Matrix& x) const override;
  std::vector<double> FeatureImportance() const override;
  std::unique_ptr<MlModel> Clone() const override;
  const char* Name() const override { return "RandomForestClassifier"; }

 private:
  ForestOptions options_;
  std::vector<DecisionTree> trees_;
  int num_classes_ = 0;
  size_t num_features_ = 0;
};

/// Bagged ensemble of variance CART trees.
class RandomForestRegressor : public MlModel {
 public:
  explicit RandomForestRegressor(ForestOptions options = {});

  Status Fit(const MlDataset& train, Rng* rng) override;
  std::vector<double> Predict(const Matrix& x) const override;
  std::vector<double> FeatureImportance() const override;
  std::unique_ptr<MlModel> Clone() const override;
  const char* Name() const override { return "RandomForestRegressor"; }

 private:
  ForestOptions options_;
  std::vector<DecisionTree> trees_;
  size_t num_features_ = 0;
};

}  // namespace modis

#endif  // MODIS_ML_RANDOM_FOREST_H_
