#ifndef MODIS_ML_MULTI_OUTPUT_GBM_H_
#define MODIS_ML_MULTI_OUTPUT_GBM_H_

#include <vector>

#include "common/matrix.h"
#include "common/rng.h"
#include "common/status.h"
#include "ml/gradient_boosting.h"

namespace modis {

/// Multi-output gradient boosting: one GBM regressor per output dimension,
/// trained on a shared feature matrix. This is the MO-GBM estimator family
/// the paper uses to valuate a whole performance vector "by a single call"
/// (§2, §6).
class MultiOutputGbm {
 public:
  explicit MultiOutputGbm(GbmOptions options = {});

  /// Fits `y.cols()` independent regressors. y is row-major: y.At(i, j) is
  /// output j of sample i.
  Status Fit(const Matrix& x, const Matrix& y, Rng* rng);

  /// Predicts all outputs for one feature row.
  std::vector<double> PredictRow(const double* row) const;

  /// Predicts all outputs for every row of x (row-major result).
  Matrix Predict(const Matrix& x) const;

  size_t num_outputs() const { return models_.size(); }
  bool trained() const { return !models_.empty(); }

 private:
  GbmOptions options_;
  size_t num_features_ = 0;
  std::vector<GradientBoostingRegressor> models_;
};

}  // namespace modis

#endif  // MODIS_ML_MULTI_OUTPUT_GBM_H_
