#ifndef MODIS_ML_KNN_H_
#define MODIS_ML_KNN_H_

#include <memory>
#include <vector>

#include "ml/model.h"

namespace modis {

/// Options shared by the k-nearest-neighbour models.
struct KnnOptions {
  int k = 5;
  /// Inverse-distance weighting of neighbour votes (uniform otherwise).
  bool distance_weighted = true;
};

/// Brute-force kNN regressor on standardized features. Serves as an
/// alternative surrogate family in the estimator comparison (§2 of the
/// paper lists surrogate-model estimation approaches MODis can plug in).
class KnnRegressor : public MlModel {
 public:
  explicit KnnRegressor(KnnOptions options = {}) : options_(options) {}

  Status Fit(const MlDataset& train, Rng* rng) override;
  std::vector<double> Predict(const Matrix& x) const override;
  std::unique_ptr<MlModel> Clone() const override;
  const char* Name() const override { return "KnnRegressor"; }

 private:
  /// Indices and weights of the k nearest training rows to `row`.
  std::vector<std::pair<double, size_t>> Neighbours(const double* row) const;

  KnnOptions options_;
  Matrix train_x_;
  std::vector<double> train_y_;
  std::vector<double> mean_, scale_;
};

/// Brute-force kNN classifier (majority / weighted vote).
class KnnClassifier : public MlModel {
 public:
  explicit KnnClassifier(KnnOptions options = {}) : options_(options) {}

  Status Fit(const MlDataset& train, Rng* rng) override;
  std::vector<double> Predict(const Matrix& x) const override;
  std::vector<std::vector<double>> PredictProba(const Matrix& x) const override;
  std::unique_ptr<MlModel> Clone() const override;
  const char* Name() const override { return "KnnClassifier"; }

 private:
  KnnOptions options_;
  int num_classes_ = 0;
  Matrix train_x_;
  std::vector<double> train_y_;
  std::vector<double> mean_, scale_;
};

}  // namespace modis

#endif  // MODIS_ML_KNN_H_
