#ifndef MODIS_ML_DECISION_TREE_H_
#define MODIS_ML_DECISION_TREE_H_

#include <vector>

#include "common/matrix.h"
#include "common/rng.h"
#include "common/status.h"

namespace modis {

/// Hyperparameters shared by all tree learners.
struct TreeOptions {
  int max_depth = 6;
  size_t min_samples_leaf = 2;
  /// Candidate split thresholds per feature. Small values give the
  /// histogram-binned behaviour of LightGBM-style learners.
  int max_bins = 64;
  /// Fraction of features considered per split (1.0 = all). Random forests
  /// use sqrt(d)/d.
  double feature_fraction = 1.0;
};

/// A CART decision tree supporting regression (variance criterion) and
/// classification (Gini criterion). This is the base learner for the random
/// forest and gradient-boosting ensembles.
///
/// Internals: nodes are stored in a flat array; leaves carry either a mean
/// response (regression) or a class histogram (classification).
class DecisionTree {
 public:
  enum class Criterion { kVariance, kGini };

  explicit DecisionTree(TreeOptions options = {}) : options_(options) {}

  /// Fits on rows `sample` of x (duplicates allowed — bootstrap). For Gini,
  /// `y` holds class indices and `num_classes` must be positive. `weights`
  /// (optional, may be empty) weight each sample row.
  Status Fit(const Matrix& x, const std::vector<double>& y,
             const std::vector<size_t>& sample, Criterion criterion,
             int num_classes, Rng* rng);

  /// Regression mean (kVariance) or majority class (kGini) for one row.
  double PredictValue(const double* row) const;

  /// Class-probability histogram for one row (kGini trees only).
  const std::vector<double>& PredictDistribution(const double* row) const;

  /// Impurity-gain importance per feature, normalized to sum to 1 (all
  /// zeros if the tree is a single leaf).
  std::vector<double> FeatureImportance(size_t num_features) const;

  size_t num_nodes() const { return nodes_.size(); }
  bool trained() const { return !nodes_.empty(); }

 private:
  struct Node {
    int feature = -1;           // -1 for leaves.
    double threshold = 0.0;     // Go left if x[feature] <= threshold.
    int left = -1;
    int right = -1;
    double value = 0.0;                 // Regression leaf mean.
    std::vector<double> distribution;   // Classification leaf histogram.
  };

  int BuildNode(const Matrix& x, const std::vector<double>& y,
                std::vector<size_t>& rows, size_t begin, size_t end, int depth,
                Rng* rng);
  const Node& Descend(const double* row) const;

  TreeOptions options_;
  Criterion criterion_ = Criterion::kVariance;
  int num_classes_ = 0;
  std::vector<Node> nodes_;
  std::vector<double> importance_;  // Raw impurity gains per feature.
};

}  // namespace modis

#endif  // MODIS_ML_DECISION_TREE_H_
