#ifndef MODIS_ML_NAIVE_BAYES_H_
#define MODIS_ML_NAIVE_BAYES_H_

#include <memory>
#include <vector>

#include "ml/model.h"

namespace modis {

/// Gaussian naive Bayes classifier: per-class, per-feature normal
/// likelihoods with variance smoothing. A cheap, training-time-friendly
/// model family for the estimator/baseline comparisons (feature-selection
/// baselines pair naturally with a linear-time classifier).
class GaussianNaiveBayes : public MlModel {
 public:
  explicit GaussianNaiveBayes(double var_smoothing = 1e-9)
      : var_smoothing_(var_smoothing) {}

  Status Fit(const MlDataset& train, Rng* rng) override;
  std::vector<double> Predict(const Matrix& x) const override;
  std::vector<std::vector<double>> PredictProba(const Matrix& x) const override;
  std::unique_ptr<MlModel> Clone() const override;
  const char* Name() const override { return "GaussianNaiveBayes"; }

 private:
  double var_smoothing_;
  int num_classes_ = 0;
  size_t num_features_ = 0;
  std::vector<double> log_prior_;      // Per class.
  std::vector<double> mean_;           // [class * d + feature].
  std::vector<double> variance_;       // [class * d + feature].
};

}  // namespace modis

#endif  // MODIS_ML_NAIVE_BAYES_H_
