#ifndef MODIS_ML_DATASET_H_
#define MODIS_ML_DATASET_H_

#include <string>
#include <vector>

#include "common/matrix.h"
#include "common/rng.h"
#include "common/status.h"
#include "table/table.h"

namespace modis {

/// Learning-task flavor a model is trained for.
enum class TaskKind { kRegression, kClassification };

/// Dense numeric learning view of a Table: feature matrix + target vector.
///
/// For classification the target holds class indices (0..num_classes-1).
/// `class_labels` preserves the original target values so predictions can be
/// mapped back.
struct MlDataset {
  Matrix x;
  std::vector<double> y;
  std::vector<std::string> feature_names;
  TaskKind task = TaskKind::kRegression;
  int num_classes = 0;  // 0 for regression.
  std::vector<Value> class_labels;

  size_t num_rows() const { return x.rows(); }
  size_t num_features() const { return x.cols(); }

  /// Subset of rows (for train/test splits).
  MlDataset SelectRows(const std::vector<size_t>& rows) const;

  /// Integer view of the target (classification only).
  std::vector<int> LabelsAsInt() const;
};

/// Conversion options for TableToDataset.
struct BridgeOptions {
  /// Columns excluded from the feature set (e.g. join keys / IDs).
  std::vector<std::string> exclude;
};

/// Converts `table` into an MlDataset predicting `target`.
///
/// Numeric features: nulls imputed with the column mean (0 if all null).
/// Categorical features: label-encoded against the sorted distinct values;
/// nulls map to a dedicated "missing" code (-1 shifted to 0, values from 1).
/// Rows with a null target are dropped. For classification a numeric target
/// is discretized by its distinct values.
Result<MlDataset> TableToDataset(const Table& table, const std::string& target,
                                 TaskKind task,
                                 const BridgeOptions& options = {});

/// Deterministic shuffled split of n rows into train/test index sets.
struct SplitIndices {
  std::vector<size_t> train;
  std::vector<size_t> test;
};
SplitIndices TrainTestSplit(size_t n, double test_fraction, Rng* rng);

}  // namespace modis

#endif  // MODIS_ML_DATASET_H_
