#include "ml/knn.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace modis {

namespace {

void FitStandardizer(const Matrix& x, std::vector<double>* mean,
                     std::vector<double>* scale) {
  const size_t n = x.rows(), d = x.cols();
  mean->assign(d, 0.0);
  scale->assign(d, 1.0);
  if (n == 0) return;
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < d; ++c) (*mean)[c] += x.At(r, c);
  }
  for (double& m : *mean) m /= static_cast<double>(n);
  std::vector<double> var(d, 0.0);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < d; ++c) {
      const double dlt = x.At(r, c) - (*mean)[c];
      var[c] += dlt * dlt;
    }
  }
  for (size_t c = 0; c < d; ++c) {
    const double s = std::sqrt(var[c] / static_cast<double>(n));
    (*scale)[c] = s > 1e-12 ? s : 1.0;
  }
}

/// Squared standardized distance between a query row and a training row.
double Distance2(const double* a, const double* b, const std::vector<double>& mean,
                 const std::vector<double>& scale) {
  double s = 0.0;
  for (size_t c = 0; c < mean.size(); ++c) {
    const double d = (a[c] - b[c]) / scale[c];
    s += d * d;
  }
  return s;
}

/// The k nearest (distance, index) pairs, ascending by distance.
std::vector<std::pair<double, size_t>> KNearest(
    const Matrix& train_x, const double* row, int k,
    const std::vector<double>& mean, const std::vector<double>& scale) {
  std::vector<std::pair<double, size_t>> all(train_x.rows());
  for (size_t r = 0; r < train_x.rows(); ++r) {
    all[r] = {Distance2(row, train_x.Row(r), mean, scale), r};
  }
  const size_t kk = std::min<size_t>(k, all.size());
  std::partial_sort(all.begin(), all.begin() + kk, all.end());
  all.resize(kk);
  return all;
}

double Weight(double dist2, bool weighted) {
  return weighted ? 1.0 / (std::sqrt(dist2) + 1e-9) : 1.0;
}

}  // namespace

Status KnnRegressor::Fit(const MlDataset& train, Rng* /*rng*/) {
  if (train.task != TaskKind::kRegression) {
    return Status::InvalidArgument("KnnRegressor needs a regression dataset");
  }
  if (train.num_rows() == 0) {
    return Status::InvalidArgument("KnnRegressor: empty training set");
  }
  train_x_ = train.x;
  train_y_ = train.y;
  FitStandardizer(train_x_, &mean_, &scale_);
  return Status::OK();
}

std::vector<double> KnnRegressor::Predict(const Matrix& x) const {
  MODIS_CHECK(!train_y_.empty()) << "KnnRegressor not trained";
  std::vector<double> out(x.rows());
  for (size_t r = 0; r < x.rows(); ++r) {
    const auto nn =
        KNearest(train_x_, x.Row(r), options_.k, mean_, scale_);
    double num = 0.0, den = 0.0;
    for (const auto& [d2, idx] : nn) {
      const double w = Weight(d2, options_.distance_weighted);
      num += w * train_y_[idx];
      den += w;
    }
    out[r] = den > 0.0 ? num / den : 0.0;
  }
  return out;
}

std::unique_ptr<MlModel> KnnRegressor::Clone() const {
  return std::make_unique<KnnRegressor>(options_);
}

Status KnnClassifier::Fit(const MlDataset& train, Rng* /*rng*/) {
  if (train.task != TaskKind::kClassification) {
    return Status::InvalidArgument(
        "KnnClassifier needs a classification dataset");
  }
  if (train.num_rows() == 0) {
    return Status::InvalidArgument("KnnClassifier: empty training set");
  }
  if (train.num_classes < 2) {
    return Status::InvalidArgument("KnnClassifier: needs >= 2 classes");
  }
  num_classes_ = train.num_classes;
  train_x_ = train.x;
  train_y_ = train.y;
  FitStandardizer(train_x_, &mean_, &scale_);
  return Status::OK();
}

std::vector<std::vector<double>> KnnClassifier::PredictProba(
    const Matrix& x) const {
  MODIS_CHECK(!train_y_.empty()) << "KnnClassifier not trained";
  std::vector<std::vector<double>> out(x.rows(),
                                       std::vector<double>(num_classes_, 0.0));
  for (size_t r = 0; r < x.rows(); ++r) {
    const auto nn =
        KNearest(train_x_, x.Row(r), options_.k, mean_, scale_);
    double total = 0.0;
    for (const auto& [d2, idx] : nn) {
      const double w = Weight(d2, options_.distance_weighted);
      out[r][static_cast<int>(train_y_[idx])] += w;
      total += w;
    }
    if (total > 0.0) {
      for (double& p : out[r]) p /= total;
    }
  }
  return out;
}

std::vector<double> KnnClassifier::Predict(const Matrix& x) const {
  const auto proba = PredictProba(x);
  std::vector<double> out(x.rows());
  for (size_t r = 0; r < x.rows(); ++r) {
    out[r] = static_cast<double>(
        std::max_element(proba[r].begin(), proba[r].end()) - proba[r].begin());
  }
  return out;
}

std::unique_ptr<MlModel> KnnClassifier::Clone() const {
  return std::make_unique<KnnClassifier>(options_);
}

}  // namespace modis
