#include "ml/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "common/logging.h"

namespace modis {

namespace {

void CheckSameSize(size_t a, size_t b) {
  MODIS_CHECK(a == b) << "metric input size mismatch: " << a << " vs " << b;
}

}  // namespace

double MeanSquaredError(const std::vector<double>& y_true,
                        const std::vector<double>& y_pred) {
  CheckSameSize(y_true.size(), y_pred.size());
  if (y_true.empty()) return 0.0;
  double s = 0.0;
  for (size_t i = 0; i < y_true.size(); ++i) {
    const double d = y_true[i] - y_pred[i];
    s += d * d;
  }
  return s / static_cast<double>(y_true.size());
}

double RootMeanSquaredError(const std::vector<double>& y_true,
                            const std::vector<double>& y_pred) {
  return std::sqrt(MeanSquaredError(y_true, y_pred));
}

double MeanAbsoluteError(const std::vector<double>& y_true,
                         const std::vector<double>& y_pred) {
  CheckSameSize(y_true.size(), y_pred.size());
  if (y_true.empty()) return 0.0;
  double s = 0.0;
  for (size_t i = 0; i < y_true.size(); ++i) {
    s += std::abs(y_true[i] - y_pred[i]);
  }
  return s / static_cast<double>(y_true.size());
}

double R2Score(const std::vector<double>& y_true,
               const std::vector<double>& y_pred) {
  CheckSameSize(y_true.size(), y_pred.size());
  if (y_true.empty()) return 0.0;
  const double mean =
      std::accumulate(y_true.begin(), y_true.end(), 0.0) /
      static_cast<double>(y_true.size());
  double ss_res = 0.0, ss_tot = 0.0;
  for (size_t i = 0; i < y_true.size(); ++i) {
    ss_res += (y_true[i] - y_pred[i]) * (y_true[i] - y_pred[i]);
    ss_tot += (y_true[i] - mean) * (y_true[i] - mean);
  }
  if (ss_tot <= 0.0) return 0.0;
  return 1.0 - ss_res / ss_tot;
}

double Accuracy(const std::vector<int>& y_true,
                const std::vector<int>& y_pred) {
  CheckSameSize(y_true.size(), y_pred.size());
  if (y_true.empty()) return 0.0;
  size_t hits = 0;
  for (size_t i = 0; i < y_true.size(); ++i) {
    if (y_true[i] == y_pred[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(y_true.size());
}

namespace {

struct ClassCounts {
  std::vector<double> tp, fp, fn;
  std::vector<bool> present;
};

ClassCounts CountPerClass(const std::vector<int>& y_true,
                          const std::vector<int>& y_pred, int num_classes) {
  ClassCounts c;
  c.tp.assign(num_classes, 0.0);
  c.fp.assign(num_classes, 0.0);
  c.fn.assign(num_classes, 0.0);
  c.present.assign(num_classes, false);
  for (size_t i = 0; i < y_true.size(); ++i) {
    const int t = y_true[i];
    const int p = y_pred[i];
    MODIS_CHECK(t >= 0 && t < num_classes) << "label out of range: " << t;
    c.present[t] = true;
    if (t == p) {
      c.tp[t] += 1.0;
    } else {
      c.fn[t] += 1.0;
      if (p >= 0 && p < num_classes) c.fp[p] += 1.0;
    }
  }
  return c;
}

double MacroAverage(const ClassCounts& c,
                    double (*per_class)(double tp, double fp, double fn)) {
  double sum = 0.0;
  int n = 0;
  for (size_t k = 0; k < c.present.size(); ++k) {
    if (!c.present[k]) continue;
    sum += per_class(c.tp[k], c.fp[k], c.fn[k]);
    ++n;
  }
  return n == 0 ? 0.0 : sum / n;
}

double PrecisionOf(double tp, double fp, double /*fn*/) {
  return (tp + fp) > 0.0 ? tp / (tp + fp) : 0.0;
}
double RecallOf(double tp, double /*fp*/, double fn) {
  return (tp + fn) > 0.0 ? tp / (tp + fn) : 0.0;
}
double F1Of(double tp, double fp, double fn) {
  const double p = PrecisionOf(tp, fp, fn);
  const double r = RecallOf(tp, fp, fn);
  return (p + r) > 0.0 ? 2.0 * p * r / (p + r) : 0.0;
}

}  // namespace

double MacroPrecision(const std::vector<int>& y_true,
                      const std::vector<int>& y_pred, int num_classes) {
  CheckSameSize(y_true.size(), y_pred.size());
  if (y_true.empty()) return 0.0;
  return MacroAverage(CountPerClass(y_true, y_pred, num_classes), PrecisionOf);
}

double MacroRecall(const std::vector<int>& y_true,
                   const std::vector<int>& y_pred, int num_classes) {
  CheckSameSize(y_true.size(), y_pred.size());
  if (y_true.empty()) return 0.0;
  return MacroAverage(CountPerClass(y_true, y_pred, num_classes), RecallOf);
}

double MacroF1(const std::vector<int>& y_true, const std::vector<int>& y_pred,
               int num_classes) {
  CheckSameSize(y_true.size(), y_pred.size());
  if (y_true.empty()) return 0.0;
  return MacroAverage(CountPerClass(y_true, y_pred, num_classes), F1Of);
}

double BinaryAuc(const std::vector<int>& y_true,
                 const std::vector<double>& scores) {
  CheckSameSize(y_true.size(), scores.size());
  const size_t n = y_true.size();
  if (n == 0) return 0.5;
  // Midrank-based Mann-Whitney U statistic.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&scores](size_t a, size_t b) { return scores[a] < scores[b]; });
  std::vector<double> rank(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    const double mid = 0.5 * (static_cast<double>(i) + static_cast<double>(j)) +
                       1.0;  // 1-based midrank
    for (size_t k = i; k <= j; ++k) rank[order[k]] = mid;
    i = j + 1;
  }
  double pos = 0.0, rank_sum = 0.0;
  for (size_t k = 0; k < n; ++k) {
    if (y_true[k] == 1) {
      pos += 1.0;
      rank_sum += rank[k];
    }
  }
  const double neg = static_cast<double>(n) - pos;
  if (pos == 0.0 || neg == 0.0) return 0.5;
  return (rank_sum - pos * (pos + 1.0) / 2.0) / (pos * neg);
}

double MacroAuc(const std::vector<int>& y_true,
                const std::vector<std::vector<double>>& proba) {
  CheckSameSize(y_true.size(), proba.size());
  if (y_true.empty()) return 0.5;
  const size_t num_classes = proba[0].size();
  double sum = 0.0;
  int counted = 0;
  for (size_t k = 0; k < num_classes; ++k) {
    std::vector<int> bin(y_true.size());
    std::vector<double> scores(y_true.size());
    bool any_pos = false, any_neg = false;
    for (size_t r = 0; r < y_true.size(); ++r) {
      bin[r] = (y_true[r] == static_cast<int>(k)) ? 1 : 0;
      (bin[r] ? any_pos : any_neg) = true;
      scores[r] = proba[r][k];
    }
    if (!any_pos || !any_neg) continue;
    sum += BinaryAuc(bin, scores);
    ++counted;
  }
  return counted == 0 ? 0.5 : sum / counted;
}

namespace {

double PerQueryDcg(const std::unordered_set<int>& rel,
                   const std::vector<int>& ranked, int k) {
  double dcg = 0.0;
  const int top = std::min<int>(k, static_cast<int>(ranked.size()));
  for (int i = 0; i < top; ++i) {
    if (rel.count(ranked[i]) > 0) dcg += 1.0 / std::log2(i + 2.0);
  }
  return dcg;
}

}  // namespace

double PrecisionAtK(const std::vector<std::vector<int>>& relevant,
                    const std::vector<std::vector<int>>& ranked, int k) {
  CheckSameSize(relevant.size(), ranked.size());
  if (relevant.empty() || k <= 0) return 0.0;
  double sum = 0.0;
  for (size_t q = 0; q < relevant.size(); ++q) {
    std::unordered_set<int> rel(relevant[q].begin(), relevant[q].end());
    int hits = 0;
    const int top = std::min<int>(k, static_cast<int>(ranked[q].size()));
    for (int i = 0; i < top; ++i) {
      if (rel.count(ranked[q][i]) > 0) ++hits;
    }
    sum += static_cast<double>(hits) / k;
  }
  return sum / static_cast<double>(relevant.size());
}

double RecallAtK(const std::vector<std::vector<int>>& relevant,
                 const std::vector<std::vector<int>>& ranked, int k) {
  CheckSameSize(relevant.size(), ranked.size());
  if (relevant.empty() || k <= 0) return 0.0;
  double sum = 0.0;
  int counted = 0;
  for (size_t q = 0; q < relevant.size(); ++q) {
    if (relevant[q].empty()) continue;
    std::unordered_set<int> rel(relevant[q].begin(), relevant[q].end());
    int hits = 0;
    const int top = std::min<int>(k, static_cast<int>(ranked[q].size()));
    for (int i = 0; i < top; ++i) {
      if (rel.count(ranked[q][i]) > 0) ++hits;
    }
    sum += static_cast<double>(hits) / static_cast<double>(rel.size());
    ++counted;
  }
  return counted == 0 ? 0.0 : sum / counted;
}

double NdcgAtK(const std::vector<std::vector<int>>& relevant,
               const std::vector<std::vector<int>>& ranked, int k) {
  CheckSameSize(relevant.size(), ranked.size());
  if (relevant.empty() || k <= 0) return 0.0;
  double sum = 0.0;
  int counted = 0;
  for (size_t q = 0; q < relevant.size(); ++q) {
    if (relevant[q].empty()) continue;
    std::unordered_set<int> rel(relevant[q].begin(), relevant[q].end());
    const double dcg = PerQueryDcg(rel, ranked[q], k);
    double idcg = 0.0;
    const int ideal = std::min<int>(k, static_cast<int>(rel.size()));
    for (int i = 0; i < ideal; ++i) idcg += 1.0 / std::log2(i + 2.0);
    if (idcg > 0.0) {
      sum += dcg / idcg;
      ++counted;
    }
  }
  return counted == 0 ? 0.0 : sum / counted;
}

}  // namespace modis
