#ifndef MODIS_ML_METRICS_H_
#define MODIS_ML_METRICS_H_

#include <vector>

namespace modis {

// Regression metrics. All require y_true.size() == y_pred.size() and at
// least one element; they return 0 (or 1 for R2) on degenerate input rather
// than trapping, since the search may valuate tiny datasets.

double MeanSquaredError(const std::vector<double>& y_true,
                        const std::vector<double>& y_pred);
double RootMeanSquaredError(const std::vector<double>& y_true,
                            const std::vector<double>& y_pred);
double MeanAbsoluteError(const std::vector<double>& y_true,
                         const std::vector<double>& y_pred);
/// Coefficient of determination; can be negative for models worse than the
/// mean predictor. Returns 0 when the target has zero variance.
double R2Score(const std::vector<double>& y_true,
               const std::vector<double>& y_pred);

// Classification metrics. Labels are class indices in [0, num_classes).

double Accuracy(const std::vector<int>& y_true, const std::vector<int>& y_pred);

/// Macro-averaged precision / recall / F1 over the classes present in
/// y_true.
double MacroPrecision(const std::vector<int>& y_true,
                      const std::vector<int>& y_pred, int num_classes);
double MacroRecall(const std::vector<int>& y_true,
                   const std::vector<int>& y_pred, int num_classes);
double MacroF1(const std::vector<int>& y_true, const std::vector<int>& y_pred,
               int num_classes);

/// Binary ROC-AUC given positive-class scores. Ties handled by midrank.
/// Returns 0.5 when only one class is present.
double BinaryAuc(const std::vector<int>& y_true,
                 const std::vector<double>& scores);

/// Multiclass AUC: one-vs-rest macro average of BinaryAuc using
/// per-class probability columns.
double MacroAuc(const std::vector<int>& y_true,
                const std::vector<std::vector<double>>& proba);

// Ranking metrics for the link-regression task (T5). `relevant` is the set
// of ground-truth items per query; `ranked` is the model's descending-score
// item ranking per query; metrics are averaged over queries.

double PrecisionAtK(const std::vector<std::vector<int>>& relevant,
                    const std::vector<std::vector<int>>& ranked, int k);
double RecallAtK(const std::vector<std::vector<int>>& relevant,
                 const std::vector<std::vector<int>>& ranked, int k);
double NdcgAtK(const std::vector<std::vector<int>>& relevant,
               const std::vector<std::vector<int>>& ranked, int k);

}  // namespace modis

#endif  // MODIS_ML_METRICS_H_
