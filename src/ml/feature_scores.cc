#include "ml/feature_scores.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace modis {

double FisherScore(const std::vector<double>& feature,
                   const std::vector<int>& labels, int num_classes) {
  MODIS_CHECK(feature.size() == labels.size()) << "FisherScore size mismatch";
  const size_t n = feature.size();
  if (n == 0 || num_classes < 2) return 0.0;

  std::vector<double> sum(num_classes, 0.0), sum_sq(num_classes, 0.0);
  std::vector<double> count(num_classes, 0.0);
  double total_sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const int k = labels[i];
    MODIS_CHECK(k >= 0 && k < num_classes) << "label out of range";
    sum[k] += feature[i];
    sum_sq[k] += feature[i] * feature[i];
    count[k] += 1.0;
    total_sum += feature[i];
  }
  const double mu = total_sum / static_cast<double>(n);
  double between = 0.0, within = 0.0;
  for (int k = 0; k < num_classes; ++k) {
    if (count[k] <= 0.0) continue;
    const double mu_k = sum[k] / count[k];
    between += count[k] * (mu_k - mu) * (mu_k - mu);
    within += sum_sq[k] - count[k] * mu_k * mu_k;
  }
  if (within <= 1e-12) return between > 1e-12 ? 1e6 : 0.0;
  return between / within;
}

double MeanFisherScore(const Matrix& x, const std::vector<int>& labels,
                       int num_classes) {
  if (x.cols() == 0) return 0.0;
  std::vector<double> feature(x.rows());
  double sum = 0.0;
  for (size_t c = 0; c < x.cols(); ++c) {
    for (size_t r = 0; r < x.rows(); ++r) feature[r] = x.At(r, c);
    sum += FisherScore(feature, labels, num_classes);
  }
  return sum / static_cast<double>(x.cols());
}

double MutualInformation(const std::vector<double>& feature,
                         const std::vector<int>& labels, int num_classes,
                         int bins) {
  MODIS_CHECK(feature.size() == labels.size())
      << "MutualInformation size mismatch";
  const size_t n = feature.size();
  if (n == 0 || num_classes < 2 || bins < 2) return 0.0;

  double lo = std::numeric_limits<double>::infinity();
  double hi = -lo;
  for (double v : feature) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (!(hi > lo)) return 0.0;  // Constant feature.
  const double width = (hi - lo) / bins;

  std::vector<double> joint(static_cast<size_t>(bins) * num_classes, 0.0);
  std::vector<double> pb(bins, 0.0), pk(num_classes, 0.0);
  for (size_t i = 0; i < n; ++i) {
    int b = static_cast<int>((feature[i] - lo) / width);
    b = std::min(b, bins - 1);
    joint[b * num_classes + labels[i]] += 1.0;
    pb[b] += 1.0;
    pk[labels[i]] += 1.0;
  }
  const double inv_n = 1.0 / static_cast<double>(n);
  double mi = 0.0;
  for (int b = 0; b < bins; ++b) {
    for (int k = 0; k < num_classes; ++k) {
      const double pjk = joint[b * num_classes + k] * inv_n;
      if (pjk <= 0.0) continue;
      mi += pjk * std::log(pjk / (pb[b] * inv_n * pk[k] * inv_n));
    }
  }
  return std::max(0.0, mi);
}

double MeanMutualInformation(const Matrix& x, const std::vector<int>& labels,
                             int num_classes, int bins) {
  if (x.cols() == 0) return 0.0;
  std::vector<double> feature(x.rows());
  double sum = 0.0;
  for (size_t c = 0; c < x.cols(); ++c) {
    for (size_t r = 0; r < x.rows(); ++r) feature[r] = x.At(r, c);
    sum += MutualInformation(feature, labels, num_classes, bins);
  }
  return sum / static_cast<double>(x.cols());
}

std::vector<int> DiscretizeTarget(const std::vector<double>& y, int bins) {
  MODIS_CHECK(bins >= 2) << "DiscretizeTarget needs >= 2 bins";
  const size_t n = y.size();
  std::vector<int> out(n, 0);
  if (n == 0) return out;
  std::vector<double> sorted = y;
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> cuts;
  for (int b = 1; b < bins; ++b) {
    cuts.push_back(sorted[n * b / bins]);
  }
  for (size_t i = 0; i < n; ++i) {
    int k = 0;
    while (k < static_cast<int>(cuts.size()) && y[i] >= cuts[k]) ++k;
    out[i] = k;
  }
  return out;
}

}  // namespace modis
