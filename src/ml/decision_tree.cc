#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/logging.h"

namespace modis {

namespace {

/// Accumulates segment statistics for either criterion.
struct SegmentStats {
  double count = 0.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  std::vector<double> class_counts;

  void Init(int num_classes) {
    count = sum = sum_sq = 0.0;
    class_counts.assign(num_classes, 0.0);
  }
  void Add(double y, bool gini) {
    count += 1.0;
    if (gini) {
      class_counts[static_cast<int>(y)] += 1.0;
    } else {
      sum += y;
      sum_sq += y * y;
    }
  }
  void Remove(double y, bool gini) {
    count -= 1.0;
    if (gini) {
      class_counts[static_cast<int>(y)] -= 1.0;
    } else {
      sum -= y;
      sum_sq -= y * y;
    }
  }
  /// Count-weighted impurity: SSE for regression, n*(1-Σp²) for Gini.
  double Impurity(bool gini) const {
    if (count <= 0.0) return 0.0;
    if (gini) {
      double sq = 0.0;
      for (double c : class_counts) sq += c * c;
      return count - sq / count;
    }
    return sum_sq - sum * sum / count;
  }
};

}  // namespace

Status DecisionTree::Fit(const Matrix& x, const std::vector<double>& y,
                         const std::vector<size_t>& sample,
                         Criterion criterion, int num_classes, Rng* rng) {
  if (x.rows() != y.size()) {
    return Status::InvalidArgument("DecisionTree::Fit: x/y size mismatch");
  }
  if (sample.empty()) {
    return Status::InvalidArgument("DecisionTree::Fit: empty sample");
  }
  if (criterion == Criterion::kGini && num_classes < 2) {
    return Status::InvalidArgument(
        "DecisionTree::Fit: classification needs >= 2 classes");
  }
  criterion_ = criterion;
  num_classes_ = criterion == Criterion::kGini ? num_classes : 0;
  nodes_.clear();
  importance_.assign(x.cols(), 0.0);

  std::vector<size_t> rows = sample;
  BuildNode(x, y, rows, 0, rows.size(), 0, rng);
  return Status::OK();
}

int DecisionTree::BuildNode(const Matrix& x, const std::vector<double>& y,
                            std::vector<size_t>& rows, size_t begin,
                            size_t end, int depth, Rng* rng) {
  const bool gini = criterion_ == Criterion::kGini;
  const size_t n = end - begin;

  SegmentStats total;
  total.Init(num_classes_);
  for (size_t i = begin; i < end; ++i) total.Add(y[rows[i]], gini);
  const double parent_impurity = total.Impurity(gini);

  const int node_index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();

  auto make_leaf = [&]() {
    Node& node = nodes_[node_index];
    if (gini) {
      node.distribution.assign(num_classes_, 0.0);
      for (int k = 0; k < num_classes_; ++k) {
        node.distribution[k] = total.class_counts[k] / total.count;
      }
      // Majority class as the point value.
      node.value = static_cast<double>(
          std::max_element(node.distribution.begin(), node.distribution.end()) -
          node.distribution.begin());
    } else {
      node.value = total.sum / total.count;
    }
    return node_index;
  };

  if (depth >= options_.max_depth || n < 2 * options_.min_samples_leaf ||
      parent_impurity <= 1e-12) {
    return make_leaf();
  }

  // Feature subsample.
  const size_t d = x.cols();
  size_t k = static_cast<size_t>(std::ceil(options_.feature_fraction * d));
  k = std::max<size_t>(1, std::min(k, d));
  std::vector<size_t> features =
      (k == d) ? [&] {
        std::vector<size_t> all(d);
        std::iota(all.begin(), all.end(), 0);
        return all;
      }()
               : rng->SampleWithoutReplacement(d, k);

  double best_gain = 1e-10;
  int best_feature = -1;
  double best_threshold = 0.0;

  // Scratch: (value, y) pairs of the current segment, sorted per feature.
  std::vector<std::pair<double, double>> pairs(n);
  for (size_t f : features) {
    for (size_t i = 0; i < n; ++i) {
      const size_t r = rows[begin + i];
      pairs[i] = {x.At(r, f), y[r]};
    }
    std::sort(pairs.begin(), pairs.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    if (pairs.front().first == pairs.back().first) continue;  // Constant.

    // Candidate positions: boundaries between distinct values, limited to
    // ~max_bins evenly spread positions (histogram-style split search).
    SegmentStats left, right = total;
    left.Init(num_classes_);
    const size_t stride =
        options_.max_bins > 0
            ? std::max<size_t>(1, n / static_cast<size_t>(options_.max_bins))
            : 1;
    size_t i = 0;
    size_t next_check = stride;
    while (i + 1 < n) {
      left.Add(pairs[i].second, gini);
      right.Remove(pairs[i].second, gini);
      ++i;
      const bool boundary = pairs[i].first > pairs[i - 1].first;
      if (!boundary || i < next_check) continue;
      next_check = i + stride;
      if (i < options_.min_samples_leaf || n - i < options_.min_samples_leaf) {
        continue;
      }
      const double gain =
          parent_impurity - left.Impurity(gini) - right.Impurity(gini);
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = 0.5 * (pairs[i - 1].first + pairs[i].first);
      }
    }
  }

  if (best_feature < 0) return make_leaf();

  // Partition rows by the chosen split.
  auto mid_it = std::stable_partition(
      rows.begin() + begin, rows.begin() + end, [&](size_t r) {
        return x.At(r, best_feature) <= best_threshold;
      });
  const size_t mid = static_cast<size_t>(mid_it - rows.begin());
  if (mid == begin || mid == end) return make_leaf();  // Degenerate.

  importance_[best_feature] += best_gain;

  const int left_child = BuildNode(x, y, rows, begin, mid, depth + 1, rng);
  const int right_child = BuildNode(x, y, rows, mid, end, depth + 1, rng);
  Node& node = nodes_[node_index];
  node.feature = best_feature;
  node.threshold = best_threshold;
  node.left = left_child;
  node.right = right_child;
  return node_index;
}

const DecisionTree::Node& DecisionTree::Descend(const double* row) const {
  MODIS_CHECK(!nodes_.empty()) << "DecisionTree not trained";
  int idx = 0;
  for (;;) {
    const Node& node = nodes_[idx];
    if (node.feature < 0) return node;
    idx = row[node.feature] <= node.threshold ? node.left : node.right;
  }
}

double DecisionTree::PredictValue(const double* row) const {
  return Descend(row).value;
}

const std::vector<double>& DecisionTree::PredictDistribution(
    const double* row) const {
  const Node& node = Descend(row);
  MODIS_CHECK(!node.distribution.empty())
      << "PredictDistribution on a regression tree";
  return node.distribution;
}

std::vector<double> DecisionTree::FeatureImportance(size_t num_features) const {
  std::vector<double> imp(num_features, 0.0);
  const size_t n = std::min(num_features, importance_.size());
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    imp[i] = importance_[i];
    total += imp[i];
  }
  if (total > 0.0) {
    for (double& v : imp) v /= total;
  }
  return imp;
}

}  // namespace modis
