#ifndef MODIS_ML_MODEL_H_
#define MODIS_ML_MODEL_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "ml/dataset.h"

namespace modis {

/// Abstract fixed deterministic data-science model M (§2 of the paper).
///
/// A concrete model is created untrained, `Fit` on a training dataset, and
/// then queried. Determinism: all randomness flows through the Rng passed to
/// Fit, so (seed, data) fully determines the model.
class MlModel {
 public:
  virtual ~MlModel() = default;

  /// Trains on `train`. The dataset's `task` must match the model family.
  virtual Status Fit(const MlDataset& train, Rng* rng) = 0;

  /// Point predictions: regression values, or argmax class indices for
  /// classifiers.
  virtual std::vector<double> Predict(const Matrix& x) const = 0;

  /// Class-probability rows (classification models only; regression models
  /// return an empty vector).
  virtual std::vector<std::vector<double>> PredictProba(const Matrix& x) const {
    (void)x;
    return {};
  }

  /// Per-feature importance scores (sum to ~1 for tree models; |coef| for
  /// linear models). Empty if the model does not expose importances.
  virtual std::vector<double> FeatureImportance() const { return {}; }

  /// Fresh untrained copy with identical hyperparameters. Used by the
  /// oracle to retrain the same model family on every candidate dataset.
  virtual std::unique_ptr<MlModel> Clone() const = 0;

  /// Human-readable family name ("RandomForest", ...).
  virtual const char* Name() const = 0;
};

}  // namespace modis

#endif  // MODIS_ML_MODEL_H_
