#include "ml/gradient_boosting.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "ml/metrics.h"

namespace modis {

namespace {

std::vector<size_t> SubsampleRows(size_t n, double fraction, Rng* rng) {
  if (fraction >= 1.0) {
    std::vector<size_t> all(n);
    std::iota(all.begin(), all.end(), 0);
    return all;
  }
  const size_t m = std::max<size_t>(1, static_cast<size_t>(fraction * n));
  return rng->SampleWithoutReplacement(n, m);
}

std::vector<double> NormalizedImportance(const std::vector<DecisionTree>& trees,
                                         size_t num_features) {
  std::vector<double> imp(num_features, 0.0);
  for (const auto& t : trees) {
    const auto ti = t.FeatureImportance(num_features);
    for (size_t i = 0; i < num_features; ++i) imp[i] += ti[i];
  }
  double total = 0.0;
  for (double v : imp) total += v;
  if (total > 0.0) {
    for (double& v : imp) v /= total;
  }
  return imp;
}

}  // namespace

GradientBoostingRegressor::GradientBoostingRegressor(GbmOptions options)
    : options_(options) {}

Status GradientBoostingRegressor::Fit(const MlDataset& train, Rng* rng) {
  if (train.task != TaskKind::kRegression) {
    return Status::InvalidArgument(
        "GradientBoostingRegressor needs a regression dataset");
  }
  const size_t n = train.num_rows();
  if (n == 0) {
    return Status::InvalidArgument("GradientBoostingRegressor: empty data");
  }
  num_features_ = train.num_features();
  trees_.clear();
  training_loss_.clear();

  base_prediction_ =
      std::accumulate(train.y.begin(), train.y.end(), 0.0) /
      static_cast<double>(n);
  std::vector<double> pred(n, base_prediction_);
  std::vector<double> residual(n);

  for (int round = 0; round < options_.num_rounds; ++round) {
    for (size_t i = 0; i < n; ++i) residual[i] = train.y[i] - pred[i];
    DecisionTree tree(options_.tree);
    const auto sample = SubsampleRows(n, options_.subsample, rng);
    MODIS_RETURN_IF_ERROR(tree.Fit(train.x, residual, sample,
                                   DecisionTree::Criterion::kVariance, 0,
                                   rng));
    for (size_t i = 0; i < n; ++i) {
      pred[i] += options_.learning_rate * tree.PredictValue(train.x.Row(i));
    }
    trees_.push_back(std::move(tree));
    training_loss_.push_back(MeanSquaredError(train.y, pred));
  }
  return Status::OK();
}

std::vector<double> GradientBoostingRegressor::Predict(const Matrix& x) const {
  MODIS_CHECK(!trees_.empty()) << "GradientBoostingRegressor not trained";
  std::vector<double> out(x.rows(), base_prediction_);
  for (size_t r = 0; r < x.rows(); ++r) {
    const double* row = x.Row(r);
    for (const auto& tree : trees_) {
      out[r] += options_.learning_rate * tree.PredictValue(row);
    }
  }
  return out;
}

std::vector<double> GradientBoostingRegressor::FeatureImportance() const {
  return NormalizedImportance(trees_, num_features_);
}

std::unique_ptr<MlModel> GradientBoostingRegressor::Clone() const {
  return std::make_unique<GradientBoostingRegressor>(options_);
}

GradientBoostingClassifier::GradientBoostingClassifier(GbmOptions options)
    : options_(options) {}

Status GradientBoostingClassifier::Fit(const MlDataset& train, Rng* rng) {
  if (train.task != TaskKind::kClassification) {
    return Status::InvalidArgument(
        "GradientBoostingClassifier needs a classification dataset");
  }
  const size_t n = train.num_rows();
  if (n == 0) {
    return Status::InvalidArgument("GradientBoostingClassifier: empty data");
  }
  num_classes_ = train.num_classes;
  if (num_classes_ < 2) {
    return Status::InvalidArgument(
        "GradientBoostingClassifier: needs >= 2 classes");
  }
  num_features_ = train.num_features();
  trees_.clear();

  // Base scores: log class priors.
  std::vector<double> prior(num_classes_, 1e-9);
  for (double y : train.y) prior[static_cast<int>(y)] += 1.0;
  base_scores_.assign(num_classes_, 0.0);
  for (int k = 0; k < num_classes_; ++k) {
    base_scores_[k] = std::log(prior[k] / static_cast<double>(n));
  }

  // raw[i*K + k]: current score of row i for class k.
  std::vector<double> raw(n * num_classes_);
  for (size_t i = 0; i < n; ++i) {
    for (int k = 0; k < num_classes_; ++k) {
      raw[i * num_classes_ + k] = base_scores_[k];
    }
  }
  std::vector<double> gradient(n);

  for (int round = 0; round < options_.num_rounds; ++round) {
    const auto sample = SubsampleRows(n, options_.subsample, rng);
    for (int k = 0; k < num_classes_; ++k) {
      // Softmax residual y_k - p_k.
      for (size_t i = 0; i < n; ++i) {
        const double* scores = &raw[i * num_classes_];
        double mx = scores[0];
        for (int c = 1; c < num_classes_; ++c) mx = std::max(mx, scores[c]);
        double denom = 0.0;
        for (int c = 0; c < num_classes_; ++c) {
          denom += std::exp(scores[c] - mx);
        }
        const double pk = std::exp(scores[k] - mx) / denom;
        const double yk = (static_cast<int>(train.y[i]) == k) ? 1.0 : 0.0;
        gradient[i] = yk - pk;
      }
      DecisionTree tree(options_.tree);
      MODIS_RETURN_IF_ERROR(tree.Fit(train.x, gradient, sample,
                                     DecisionTree::Criterion::kVariance, 0,
                                     rng));
      for (size_t i = 0; i < n; ++i) {
        raw[i * num_classes_ + k] +=
            options_.learning_rate * tree.PredictValue(train.x.Row(i));
      }
      trees_.push_back(std::move(tree));
    }
  }
  return Status::OK();
}

std::vector<double> GradientBoostingClassifier::RawScores(
    const double* row) const {
  std::vector<double> scores = base_scores_;
  const size_t rounds = trees_.size() / num_classes_;
  for (size_t r = 0; r < rounds; ++r) {
    for (int k = 0; k < num_classes_; ++k) {
      scores[k] += options_.learning_rate *
                   trees_[r * num_classes_ + k].PredictValue(row);
    }
  }
  return scores;
}

std::vector<std::vector<double>> GradientBoostingClassifier::PredictProba(
    const Matrix& x) const {
  MODIS_CHECK(!trees_.empty()) << "GradientBoostingClassifier not trained";
  std::vector<std::vector<double>> proba(x.rows());
  for (size_t r = 0; r < x.rows(); ++r) {
    std::vector<double> scores = RawScores(x.Row(r));
    double mx = scores[0];
    for (double s : scores) mx = std::max(mx, s);
    double denom = 0.0;
    for (double& s : scores) {
      s = std::exp(s - mx);
      denom += s;
    }
    for (double& s : scores) s /= denom;
    proba[r] = std::move(scores);
  }
  return proba;
}

std::vector<double> GradientBoostingClassifier::Predict(const Matrix& x) const {
  const auto proba = PredictProba(x);
  std::vector<double> out(x.rows());
  for (size_t r = 0; r < x.rows(); ++r) {
    out[r] = static_cast<double>(
        std::max_element(proba[r].begin(), proba[r].end()) - proba[r].begin());
  }
  return out;
}

std::vector<double> GradientBoostingClassifier::FeatureImportance() const {
  return NormalizedImportance(trees_, num_features_);
}

std::unique_ptr<MlModel> GradientBoostingClassifier::Clone() const {
  return std::make_unique<GradientBoostingClassifier>(options_);
}

GbmOptions LightGbmLiteOptions() {
  GbmOptions opt;
  opt.num_rounds = 50;
  opt.learning_rate = 0.15;
  opt.tree.max_depth = 4;
  opt.tree.min_samples_leaf = 6;
  opt.tree.max_bins = 32;  // Histogram binning — the LightGBM hallmark.
  opt.subsample = 0.8;
  return opt;
}

}  // namespace modis
