#include <gtest/gtest.h>

#include <set>

#include "ops/literal.h"
#include "ops/operators.h"

namespace modis {
namespace {

Table MakeLeft() {
  Table t(Schema({{"id", ColumnType::kNumeric},
                  {"x", ColumnType::kNumeric},
                  {"season", ColumnType::kCategorical}}));
  EXPECT_TRUE(t.AppendRow({Value(int64_t{1}), Value(1.0), Value("spring")}).ok());
  EXPECT_TRUE(t.AppendRow({Value(int64_t{2}), Value(2.0), Value("summer")}).ok());
  EXPECT_TRUE(t.AppendRow({Value(int64_t{3}), Value(3.0), Value("spring")}).ok());
  EXPECT_TRUE(t.AppendRow({Value(int64_t{4}), Value::Null(), Value("fall")}).ok());
  return t;
}

Table MakeRight() {
  Table t(Schema({{"id", ColumnType::kNumeric}, {"y", ColumnType::kNumeric}}));
  EXPECT_TRUE(t.AppendRow({Value(int64_t{2}), Value(20.0)}).ok());
  EXPECT_TRUE(t.AppendRow({Value(int64_t{3}), Value(30.0)}).ok());
  EXPECT_TRUE(t.AppendRow({Value(int64_t{5}), Value(50.0)}).ok());
  return t;
}

// ---------------------------------------------------------------- Literal

TEST(LiteralTest, EqualsMatchesValueNotNull) {
  Literal l = Literal::Equals("season", Value("spring"));
  EXPECT_TRUE(l.Matches(Value("spring")));
  EXPECT_FALSE(l.Matches(Value("fall")));
  EXPECT_FALSE(l.Matches(Value::Null()));
}

TEST(LiteralTest, NumericEqualsCrossesKinds) {
  Literal l = Literal::Equals("x", Value(2.0));
  EXPECT_TRUE(l.Matches(Value(int64_t{2})));
  EXPECT_TRUE(l.Matches(Value(2.0)));
  EXPECT_FALSE(l.Matches(Value(2.1)));
}

TEST(LiteralTest, RangeIsHalfOpen) {
  Literal l = Literal::Range("x", 1.0, 2.0);
  EXPECT_TRUE(l.Matches(Value(1.0)));
  EXPECT_TRUE(l.Matches(Value(1.999)));
  EXPECT_FALSE(l.Matches(Value(2.0)));
  EXPECT_FALSE(l.Matches(Value("1.5")));
  EXPECT_FALSE(l.Matches(Value::Null()));
}

TEST(LiteralTest, ToStringIsReadable) {
  EXPECT_EQ(Literal::Equals("a", Value("x")).ToString(), "a = x");
  EXPECT_NE(Literal::Range("a", 0, 1).ToString().find("a in ["),
            std::string::npos);
}

TEST(DeriveLiteralsTest, NumericPartitionCoversDomain) {
  Table t = MakeLeft();
  Rng rng(1);
  auto sets = DeriveLiterals(t, 2, &rng);
  ASSERT_EQ(sets.size(), 3u);
  // Every non-null numeric value must match exactly one literal of its
  // attribute.
  for (const Value& v : t.column(1)) {
    if (v.is_null()) continue;
    int matches = 0;
    for (const Literal& l : sets[1].literals) matches += l.Matches(v);
    EXPECT_EQ(matches, 1) << v.ToString();
  }
}

TEST(DeriveLiteralsTest, CategoricalOnePerDistinctValue) {
  Table t = MakeLeft();
  Rng rng(2);
  auto sets = DeriveLiterals(t, 10, &rng);
  EXPECT_EQ(sets[2].literals.size(), 3u);  // spring, summer, fall.
}

TEST(DeriveLiteralsTest, CategoricalCapKeepsMostFrequent) {
  Table t = MakeLeft();
  Rng rng(3);
  auto sets = DeriveLiterals(t, 1, &rng);
  ASSERT_EQ(sets[2].literals.size(), 1u);
  EXPECT_TRUE(sets[2].literals[0].Matches(Value("spring")));  // Count 2.
}

class DeriveLiteralsParamTest : public ::testing::TestWithParam<int> {};

TEST_P(DeriveLiteralsParamTest, PartitionPropertyHolds) {
  const int k = GetParam();
  Rng data_rng(400 + k);
  Table t(Schema({{"v", ColumnType::kNumeric}}));
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(t.AppendRow({Value(data_rng.Normal(0, 10))}).ok());
  }
  Rng rng(500 + k);
  auto sets = DeriveLiterals(t, k, &rng);
  ASSERT_EQ(sets.size(), 1u);
  EXPECT_LE(static_cast<int>(sets[0].literals.size()), k);
  for (const Value& v : t.column(0)) {
    int matches = 0;
    for (const Literal& l : sets[0].literals) matches += l.Matches(v);
    EXPECT_EQ(matches, 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, DeriveLiteralsParamTest,
                         ::testing::Values(1, 2, 4, 8, 30));

// ---------------------------------------------------------------- Reduct

TEST(ReductTest, RemovesMatchingTuples) {
  Table t = MakeLeft();
  auto r = Reduct(t, Literal::Equals("season", Value("spring")));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 2u);
  for (size_t i = 0; i < r->num_rows(); ++i) {
    EXPECT_NE(r->At(i, 2).AsString(), "spring");
  }
}

TEST(ReductTest, NullsSurviveReduction) {
  Table t = MakeLeft();
  auto r = Reduct(t, Literal::Range("x", 0.0, 10.0));
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->num_rows(), 1u);  // Only the null-x row survives.
  EXPECT_TRUE(r->At(0, 1).is_null());
}

TEST(ReductTest, UnknownAttributeFails) {
  Table t = MakeLeft();
  EXPECT_FALSE(Reduct(t, Literal::Equals("nope", Value(1.0))).ok());
}

TEST(ReductTest, MatchingRowsAgreesWithReduct) {
  Table t = MakeLeft();
  Literal l = Literal::Equals("season", Value("spring"));
  auto rows = MatchingRows(t, l);
  auto reduced = Reduct(t, l);
  ASSERT_TRUE(rows.ok());
  ASSERT_TRUE(reduced.ok());
  EXPECT_EQ(rows->size() + reduced->num_rows(), t.num_rows());
}

// ---------------------------------------------------------------- Augment

TEST(AugmentTest, SchemaIsUnionAndRowsAppend) {
  Table base = MakeLeft();
  Table src(Schema({{"id", ColumnType::kNumeric},
                    {"season", ColumnType::kCategorical},
                    {"z", ColumnType::kNumeric}}));
  ASSERT_TRUE(src.AppendRow({Value(int64_t{7}), Value("spring"), Value(9.0)}).ok());
  ASSERT_TRUE(src.AppendRow({Value(int64_t{8}), Value("winter"), Value(8.0)}).ok());

  auto out = AugmentUnion(base, src, Literal::Equals("season", Value("spring")));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_cols(), 4u);  // id, x, season, z.
  EXPECT_EQ(out->num_rows(), base.num_rows() + 1);
  // New row: z filled, x null.
  const size_t last = out->num_rows() - 1;
  EXPECT_TRUE(out->At(last, 1).is_null());
  EXPECT_DOUBLE_EQ(out->At(last, 3).AsDouble(), 9.0);
  // Old rows: z null.
  EXPECT_TRUE(out->At(0, 3).is_null());
}

TEST(AugmentTest, LiteralMustExistInSource) {
  Table base = MakeLeft();
  Table src(Schema({{"id", ColumnType::kNumeric}}));
  EXPECT_FALSE(AugmentUnion(base, src, Literal::Equals("w", Value(1.0))).ok());
}

// ---------------------------------------------------------------- Joins

TEST(HashJoinTest, InnerKeepsMatchesOnly) {
  auto j = HashJoin(MakeLeft(), MakeRight(), "id", JoinType::kInner);
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j->num_rows(), 2u);
  EXPECT_EQ(j->num_cols(), 4u);  // id, x, season, y.
  std::set<int64_t> ids;
  for (size_t r = 0; r < j->num_rows(); ++r) ids.insert(j->At(r, 0).AsInt());
  EXPECT_EQ(ids, (std::set<int64_t>{2, 3}));
}

TEST(HashJoinTest, LeftOuterNullPadsMisses) {
  auto j = HashJoin(MakeLeft(), MakeRight(), "id", JoinType::kLeftOuter);
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j->num_rows(), 4u);
  // Row with id=1 has null y.
  for (size_t r = 0; r < j->num_rows(); ++r) {
    if (j->At(r, 0).AsInt() == 1) {
      EXPECT_TRUE(j->At(r, 3).is_null());
    }
    if (j->At(r, 0).AsInt() == 2) {
      EXPECT_DOUBLE_EQ(j->At(r, 3).AsDouble(), 20.0);
    }
  }
}

TEST(HashJoinTest, FullOuterKeepsBothSides) {
  auto j = HashJoin(MakeLeft(), MakeRight(), "id", JoinType::kFullOuter);
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j->num_rows(), 5u);  // 4 left + unmatched id=5.
  bool found5 = false;
  for (size_t r = 0; r < j->num_rows(); ++r) {
    if (!j->At(r, 0).is_null() && j->At(r, 0).AsInt() == 5) {
      found5 = true;
      EXPECT_TRUE(j->At(r, 1).is_null());   // x null-padded.
      EXPECT_DOUBLE_EQ(j->At(r, 3).AsDouble(), 50.0);
    }
  }
  EXPECT_TRUE(found5);
}

TEST(HashJoinTest, MissingKeyFails) {
  EXPECT_FALSE(HashJoin(MakeLeft(), MakeRight(), "zzz", JoinType::kInner).ok());
}

TEST(HashJoinTest, DuplicateNonKeyColumnFails) {
  Table r2(Schema({{"id", ColumnType::kNumeric}, {"x", ColumnType::kNumeric}}));
  ASSERT_TRUE(r2.AppendRow({Value(int64_t{1}), Value(0.0)}).ok());
  EXPECT_FALSE(HashJoin(MakeLeft(), r2, "id", JoinType::kInner).ok());
}

TEST(HashJoinTest, NullKeysNeverMatch) {
  Table l(Schema({{"id", ColumnType::kNumeric}, {"a", ColumnType::kNumeric}}));
  ASSERT_TRUE(l.AppendRow({Value::Null(), Value(1.0)}).ok());
  Table r(Schema({{"id", ColumnType::kNumeric}, {"b", ColumnType::kNumeric}}));
  ASSERT_TRUE(r.AppendRow({Value::Null(), Value(2.0)}).ok());
  auto inner = HashJoin(l, r, "id", JoinType::kInner);
  ASSERT_TRUE(inner.ok());
  EXPECT_EQ(inner->num_rows(), 0u);
  auto full = HashJoin(l, r, "id", JoinType::kFullOuter);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->num_rows(), 2u);  // Both kept, unmatched.
}

TEST(UniversalTableTest, JoinsAllTables) {
  Table extra(Schema({{"id", ColumnType::kNumeric}, {"w", ColumnType::kNumeric}}));
  ASSERT_TRUE(extra.AppendRow({Value(int64_t{1}), Value(100.0)}).ok());
  auto u = BuildUniversalTable({MakeLeft(), MakeRight(), extra}, "id");
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->num_cols(), 5u);  // id, x, season, y, w.
  EXPECT_EQ(u->num_rows(), 5u);  // ids 1-5.
}

TEST(UniversalTableTest, EmptyInputFails) {
  EXPECT_FALSE(BuildUniversalTable({}, "id").ok());
}

TEST(UniversalTableTest, MissingKeyFails) {
  Table t(Schema({{"a", ColumnType::kNumeric}}));
  EXPECT_FALSE(BuildUniversalTable({t}, "id").ok());
}

}  // namespace
}  // namespace modis
