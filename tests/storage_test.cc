#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#if !defined(_WIN32)
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "core/algorithms.h"
#include "datagen/tasks.h"
#include "estimator/supervised_evaluator.h"
#include "storage/persistent_record_cache.h"
#include "storage/record_log.h"

namespace modis {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------- helpers

/// A fresh path under the test temp dir (removed eagerly so each test
/// starts from a missing file).
std::string TempLogPath(const std::string& name) {
  const fs::path path = fs::path(::testing::TempDir()) / name;
  fs::remove(path);
  fs::remove(fs::path(path.string() + ".compact"));
  return path.string();
}

StoredRecord MakeRecord(uint64_t fingerprint, const std::string& key,
                        double salt) {
  StoredRecord r;
  r.fingerprint = fingerprint;
  r.key = key;
  r.features = {salt, salt + 1.0, 0.25};
  r.eval.raw = {salt * 2.0, -salt};
  r.eval.normalized = {0.5 + salt / 100.0, 0.125};
  return r;
}

void ExpectRecordEq(const StoredRecord& a, const StoredRecord& b) {
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.key, b.key);
  EXPECT_EQ(a.features, b.features);
  EXPECT_EQ(a.eval.raw, b.eval.raw);
  EXPECT_EQ(a.eval.normalized, b.eval.normalized);
}

// ---------------------------------------------------------------- crc / fp

TEST(Crc32Test, MatchesKnownVector) {
  // The classic IEEE 802.3 check value.
  const char data[] = "123456789";
  EXPECT_EQ(Crc32(data, 9), 0xCBF43926u);
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::vector<uint8_t> payload(64, 0xA5);
  const uint32_t clean = Crc32(payload.data(), payload.size());
  payload[17] ^= 0x01;
  EXPECT_NE(clean, Crc32(payload.data(), payload.size()));
}

TEST(FingerprintBuilderTest, SensitiveToContentOrderAndType) {
  const uint64_t a = FingerprintBuilder().Add("x").Add(uint64_t{1}).Digest();
  const uint64_t b = FingerprintBuilder().Add("x").Add(uint64_t{2}).Digest();
  const uint64_t c = FingerprintBuilder().Add(uint64_t{1}).Add("x").Digest();
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  // Deterministic across builders.
  EXPECT_EQ(a, FingerprintBuilder().Add("x").Add(uint64_t{1}).Digest());
}

// ---------------------------------------------------------------- log

TEST(RecordLogTest, PayloadRoundTrip) {
  const StoredRecord record = MakeRecord(42, "10110", 3.0);
  const std::vector<uint8_t> payload = RecordLog::EncodePayload(record);
  StoredRecord decoded;
  ASSERT_TRUE(RecordLog::DecodePayload(payload.data(), payload.size(),
                                       &decoded));
  ExpectRecordEq(record, decoded);
  // Truncated payloads never decode.
  for (size_t cut : {size_t{0}, size_t{1}, payload.size() - 1}) {
    EXPECT_FALSE(RecordLog::DecodePayload(payload.data(), cut, &decoded));
  }
}

TEST(RecordLogTest, FileRoundTrip) {
  const std::string path = TempLogPath("roundtrip.rlog");
  {
    std::vector<StoredRecord> loaded;
    auto log = RecordLog::Open(path, /*read_only=*/false, &loaded);
    ASSERT_TRUE(log.ok()) << log.status().ToString();
    EXPECT_TRUE(loaded.empty());
    for (int i = 0; i < 5; ++i) {
      MODIS_CHECK_OK(log->Append(MakeRecord(7, "key" + std::to_string(i),
                                            double(i))));
    }
    MODIS_CHECK_OK(log->Flush());
  }
  std::vector<StoredRecord> loaded;
  auto log = RecordLog::Open(path, /*read_only=*/true, &loaded);
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  ASSERT_EQ(loaded.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    ExpectRecordEq(loaded[i], MakeRecord(7, "key" + std::to_string(i),
                                         double(i)));
  }
  EXPECT_EQ(log->discarded_tail_bytes(), 0u);
}

TEST(RecordLogTest, ReadOnlyOpenOfMissingFileFails) {
  auto log = RecordLog::Open(TempLogPath("missing.rlog"),
                             /*read_only=*/true, nullptr);
  EXPECT_FALSE(log.ok());
}

TEST(RecordLogTest, RecoversFromTornTail) {
  const std::string path = TempLogPath("torn.rlog");
  {
    std::vector<StoredRecord> loaded;
    auto log = RecordLog::Open(path, false, &loaded);
    ASSERT_TRUE(log.ok());
    MODIS_CHECK_OK(log->Append(MakeRecord(1, "a", 1.0)));
    MODIS_CHECK_OK(log->Append(MakeRecord(1, "b", 2.0)));
    MODIS_CHECK_OK(log->Flush());
  }
  // Simulate a crash mid-append: a frame header promising more bytes than
  // were written.
  {
    std::FILE* f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const uint8_t torn[6] = {0xFF, 0x00, 0x00, 0x00, 0xDE, 0xAD};
    ASSERT_EQ(std::fwrite(torn, 1, sizeof(torn), f), sizeof(torn));
    std::fclose(f);
  }
  // Writable reopen: valid prefix recovered, tail truncated, appends land
  // cleanly after the last good record.
  {
    std::vector<StoredRecord> loaded;
    auto log = RecordLog::Open(path, false, &loaded);
    ASSERT_TRUE(log.ok()) << log.status().ToString();
    ASSERT_EQ(loaded.size(), 2u);
    EXPECT_EQ(log->discarded_tail_bytes(), 6u);
    MODIS_CHECK_OK(log->Append(MakeRecord(1, "c", 3.0)));
    MODIS_CHECK_OK(log->Flush());
  }
  std::vector<StoredRecord> loaded;
  auto log = RecordLog::Open(path, true, &loaded);
  ASSERT_TRUE(log.ok());
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_EQ(loaded[2].key, "c");
  EXPECT_EQ(log->discarded_tail_bytes(), 0u);
}

TEST(RecordLogTest, CrcMismatchStopsTheScan) {
  const std::string path = TempLogPath("crc.rlog");
  {
    std::vector<StoredRecord> loaded;
    auto log = RecordLog::Open(path, false, &loaded);
    ASSERT_TRUE(log.ok());
    MODIS_CHECK_OK(log->Append(MakeRecord(1, "first", 1.0)));
    MODIS_CHECK_OK(log->Append(MakeRecord(1, "second", 2.0)));
    MODIS_CHECK_OK(log->Flush());
  }
  // Flip one payload byte of the second record (the final byte of the
  // file), leaving its frame header intact.
  {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, -1, SEEK_END), 0);
    const int c = std::fgetc(f);
    ASSERT_NE(c, EOF);
    ASSERT_EQ(std::fseek(f, -1, SEEK_END), 0);
    std::fputc(c ^ 0xFF, f);
    std::fclose(f);
  }
  std::vector<StoredRecord> loaded;
  auto log = RecordLog::Open(path, true, &loaded);
  ASSERT_TRUE(log.ok());
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].key, "first");
  EXPECT_GT(log->discarded_tail_bytes(), 0u);
}

TEST(RecordLogTest, RejectsVersionMismatch) {
  const std::string path = TempLogPath("version.rlog");
  {
    std::vector<StoredRecord> loaded;
    auto log = RecordLog::Open(path, false, &loaded);
    ASSERT_TRUE(log.ok());
    MODIS_CHECK_OK(log->Append(MakeRecord(1, "a", 1.0)));
    MODIS_CHECK_OK(log->Flush());
  }
  {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 8, SEEK_SET), 0);  // Version field.
    std::fputc(RecordLog::kFormatVersion + 1, f);
    std::fclose(f);
  }
  auto log = RecordLog::Open(path, false, nullptr);
  ASSERT_FALSE(log.ok());
  EXPECT_NE(log.status().ToString().find("version"), std::string::npos);
}

TEST(RecordLogTest, TornHeaderIsRewrittenOnWritableOpen) {
  // A crash between create and the 16-byte header write leaves a short
  // prefix of our header; it can hold no records, so a writable open
  // treats it as fresh. Read-only opens and short *foreign* files fail.
  const std::string path = TempLogPath("torn_header.rlog");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(RecordLog::kMagic, 1, 5, f), 5u);
    std::fclose(f);
  }
  EXPECT_FALSE(RecordLog::Open(path, /*read_only=*/true, nullptr).ok());
  {
    std::vector<StoredRecord> loaded;
    auto log = RecordLog::Open(path, /*read_only=*/false, &loaded);
    ASSERT_TRUE(log.ok()) << log.status().ToString();
    EXPECT_TRUE(loaded.empty());
    MODIS_CHECK_OK(log->Append(MakeRecord(1, "a", 1.0)));
    MODIS_CHECK_OK(log->Flush());
  }
  std::vector<StoredRecord> loaded;
  ASSERT_TRUE(RecordLog::Open(path, true, &loaded).ok());
  ASSERT_EQ(loaded.size(), 1u);

  // Same-length file with foreign content is rejected, not clobbered.
  const std::string foreign = TempLogPath("short_foreign.bin");
  {
    std::FILE* f = std::fopen(foreign.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("MODIX", f);
    std::fclose(f);
  }
  EXPECT_FALSE(RecordLog::Open(foreign, /*read_only=*/false, nullptr).ok());
}

TEST(RecordLogTest, RejectsForeignFiles) {
  const std::string path = TempLogPath("foreign.bin");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("definitely not a record log, but long enough", f);
    std::fclose(f);
  }
  EXPECT_FALSE(RecordLog::Open(path, false, nullptr).ok());
}

// ---------------------------------------------------------------- cache

TEST(PersistentRecordCacheTest, InsertFindAndReload) {
  const std::string path = TempLogPath("cache.rlog");
  Evaluation eval;
  eval.raw = {0.9, 12.0};
  eval.normalized = {0.1, 0.6};
  {
    auto cache =
        PersistentRecordCache::Open(path, CacheMode::kReadWrite, 99);
    ASSERT_TRUE(cache.ok());
    EXPECT_EQ((*cache)->Find("110"), nullptr);
    (*cache)->Insert("110", {1.0, 1.0, 0.0}, eval);
    const StoredRecord* hit = (*cache)->Find("110");
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->eval.normalized, eval.normalized);
    MODIS_CHECK_OK((*cache)->Flush());
  }
  auto cache = PersistentRecordCache::Open(path, CacheMode::kRead, 99);
  ASSERT_TRUE(cache.ok());
  EXPECT_EQ((*cache)->stats().task_records, 1u);
  const StoredRecord* hit = (*cache)->Find("110");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->eval.raw, eval.raw);
  EXPECT_EQ((*cache)->stats().served, 1u);
}

TEST(PersistentRecordCacheTest, FingerprintScopesServing) {
  const std::string path = TempLogPath("cache_scope.rlog");
  Evaluation eval;
  eval.raw = {1.0};
  eval.normalized = {0.5};
  {
    auto cache =
        PersistentRecordCache::Open(path, CacheMode::kReadWrite, 1);
    ASSERT_TRUE(cache.ok());
    (*cache)->Insert("101", {1.0}, eval);
    MODIS_CHECK_OK((*cache)->Flush());
  }
  // A different task sees nothing, but its own inserts coexist in the
  // same file.
  {
    auto cache =
        PersistentRecordCache::Open(path, CacheMode::kReadWrite, 2);
    ASSERT_TRUE(cache.ok());
    EXPECT_EQ((*cache)->stats().loaded_records, 1u);
    EXPECT_EQ((*cache)->stats().task_records, 0u);
    EXPECT_EQ((*cache)->Find("101"), nullptr);
    (*cache)->Insert("101", {2.0}, eval);
    MODIS_CHECK_OK((*cache)->Flush());
  }
  auto cache = PersistentRecordCache::Open(path, CacheMode::kRead, 1);
  ASSERT_TRUE(cache.ok());
  EXPECT_EQ((*cache)->stats().loaded_records, 2u);
  EXPECT_EQ((*cache)->stats().task_records, 1u);
  ASSERT_NE((*cache)->Find("101"), nullptr);
  EXPECT_EQ((*cache)->Find("101")->features, (std::vector<double>{1.0}));
}

TEST(PersistentRecordCacheTest, DuplicateKeysLastWriteWinsAndCompact) {
  const std::string path = TempLogPath("cache_dup.rlog");
  {
    std::vector<StoredRecord> loaded;
    auto log = RecordLog::Open(path, false, &loaded);
    ASSERT_TRUE(log.ok());
    // Three generations of the same key plus one live record: 2 of 4 are
    // dead, which crosses the >=50% auto-compaction threshold.
    MODIS_CHECK_OK(log->Append(MakeRecord(5, "k", 1.0)));
    MODIS_CHECK_OK(log->Append(MakeRecord(5, "k", 2.0)));
    MODIS_CHECK_OK(log->Append(MakeRecord(5, "k", 3.0)));
    MODIS_CHECK_OK(log->Append(MakeRecord(6, "other", 9.0)));
    MODIS_CHECK_OK(log->Flush());
  }
  const auto size_before = fs::file_size(path);
  {
    auto cache =
        PersistentRecordCache::Open(path, CacheMode::kReadWrite, 5);
    ASSERT_TRUE(cache.ok());
    const StoredRecord* hit = (*cache)->Find("k");
    ASSERT_NE(hit, nullptr);
    ExpectRecordEq(*hit, MakeRecord(5, "k", 3.0));  // Last write won.
    EXPECT_EQ((*cache)->stats().compacted_away, 2u);
  }
  EXPECT_LT(fs::file_size(path), size_before);
  // Compaction preserved the latest generation and the foreign record.
  std::vector<StoredRecord> loaded;
  auto log = RecordLog::Open(path, true, &loaded);
  ASSERT_TRUE(log.ok());
  ASSERT_EQ(loaded.size(), 2u);
  std::sort(loaded.begin(), loaded.end(),
            [](const StoredRecord& a, const StoredRecord& b) {
              return a.fingerprint < b.fingerprint;
            });
  ExpectRecordEq(loaded[0], MakeRecord(5, "k", 3.0));
  ExpectRecordEq(loaded[1], MakeRecord(6, "other", 9.0));
}

// ---------------------------------------------------------------- locking

#if !defined(_WIN32)

TEST(RecordLogLockTest, SingleWriterContractFailsFast) {
  const std::string path = TempLogPath("lock_writer.rlog");
  {
    auto writer = RecordLog::Open(path, /*read_only=*/false, nullptr);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();

    // A second writer — same process, different open file description —
    // must fail fast instead of interleaving scan/truncate/append.
    auto second = RecordLog::Open(path, /*read_only=*/false, nullptr);
    ASSERT_FALSE(second.ok());
    EXPECT_NE(second.status().ToString().find("locked"), std::string::npos);

    // Readers are excluded while a writer is live: the host owning the
    // file answers queries; late readers degrade to a cold run.
    auto reader = RecordLog::Open(path, /*read_only=*/true, nullptr);
    ASSERT_FALSE(reader.ok());
    EXPECT_NE(reader.status().ToString().find("locked"), std::string::npos);
  }
  // The lock dies with the writer: both opens succeed afterwards.
  EXPECT_TRUE(RecordLog::Open(path, /*read_only=*/true, nullptr).ok());
  EXPECT_TRUE(RecordLog::Open(path, /*read_only=*/false, nullptr).ok());
}

TEST(RecordLogLockTest, RewriteCarriesTheWriterLock) {
  const std::string path = TempLogPath("lock_rewrite.rlog");
  auto writer = RecordLog::Open(path, /*read_only=*/false, nullptr);
  ASSERT_TRUE(writer.ok());
  MODIS_CHECK_OK(writer->Append(MakeRecord(1, "a", 1.0)));
  MODIS_CHECK_OK(writer->Rewrite({MakeRecord(1, "a", 1.0)}));
  // Still the single writer after the compaction swap.
  EXPECT_FALSE(RecordLog::Open(path, /*read_only=*/false, nullptr).ok());
  MODIS_CHECK_OK(writer->Append(MakeRecord(1, "b", 2.0)));
  MODIS_CHECK_OK(writer->Flush());
}

TEST(PersistentRecordCacheTest, WriterLockExcludesSecondCache) {
  const std::string path = TempLogPath("lock_cache.rlog");
  auto host = PersistentRecordCache::Open(path, CacheMode::kReadWrite, 1);
  ASSERT_TRUE(host.ok());
  auto intruder =
      PersistentRecordCache::Open(path, CacheMode::kReadWrite, 1);
  EXPECT_FALSE(intruder.ok());
}

TEST(PersistentRecordCacheTest, TornTailRecoveryUnderLock) {
  const std::string path = TempLogPath("lock_torn.rlog");
  Evaluation eval;
  eval.raw = {1.0};
  eval.normalized = {0.5};
  {
    auto cache = PersistentRecordCache::Open(path, CacheMode::kReadWrite, 3);
    ASSERT_TRUE(cache.ok());
    (*cache)->Insert("111", {1.0}, eval);
    MODIS_CHECK_OK((*cache)->Flush());
  }
  {
    std::FILE* f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const uint8_t torn[5] = {0x40, 0x00, 0x00, 0x00, 0xAB};
    ASSERT_EQ(std::fwrite(torn, 1, sizeof(torn), f), sizeof(torn));
    std::fclose(f);
  }
  // The writable (locked) open truncates the torn tail in place and
  // appends after the valid prefix, exactly as before locking existed.
  {
    auto cache = PersistentRecordCache::Open(path, CacheMode::kReadWrite, 3);
    ASSERT_TRUE(cache.ok()) << cache.status().ToString();
    EXPECT_EQ((*cache)->stats().discarded_tail_bytes, 5u);
    EXPECT_EQ((*cache)->stats().task_records, 1u);
    (*cache)->Insert("110", {2.0}, eval);
    MODIS_CHECK_OK((*cache)->Flush());
  }
  std::vector<StoredRecord> records;
  auto log = RecordLog::Open(path, /*read_only=*/true, &records);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(records.size(), 2u);
  EXPECT_EQ(log->discarded_tail_bytes(), 0u);
}

#endif  // !_WIN32

// --------------------------------------------------------------- bounding

TEST(PersistentRecordCacheTest, EvictionKeepsMostRecentlyHitRecords) {
  const std::string path = TempLogPath("evict_records.rlog");
  const size_t frame = RecordLog::FrameBytes(MakeRecord(7, "k1", 0.0));
  PersistentRecordCache::Options options;
  options.max_bytes = RecordLog::kHeaderSize + 4 * frame;
  auto cache =
      PersistentRecordCache::Open(path, CacheMode::kReadWrite, 7, options);
  ASSERT_TRUE(cache.ok());
  for (int i = 1; i <= 6; ++i) {
    const StoredRecord r = MakeRecord(7, "k" + std::to_string(i), double(i));
    (*cache)->Insert(r.key, r.features, r.eval);
  }
  // Refresh k1 and k2: the least-recently-hit records are now k3 and k4.
  EXPECT_TRUE((*cache)->Get(7, "k1", nullptr));
  EXPECT_TRUE((*cache)->Get(7, "k2", nullptr));

  MODIS_CHECK_OK((*cache)->Flush());
  EXPECT_EQ((*cache)->stats().evicted, 2u);
  EXPECT_LE((*cache)->stats().log_bytes, options.max_bytes);
  EXPECT_LE(fs::file_size(path), options.max_bytes);
  for (const char* kept : {"k1", "k2", "k5", "k6"}) {
    EXPECT_TRUE((*cache)->Contains(kept)) << kept;
  }
  for (const char* gone : {"k3", "k4"}) {
    EXPECT_FALSE((*cache)->Contains(gone)) << gone;
  }
}

TEST(PersistentRecordCacheTest, EvictionDropsLeastRecentlyHitFingerprintFirst) {
  const std::string path = TempLogPath("evict_fps.rlog");
  const size_t frame = RecordLog::FrameBytes(MakeRecord(1, "k1", 0.0));
  PersistentRecordCache::Options options;
  options.max_bytes = RecordLog::kHeaderSize + 2 * frame;
  auto cache =
      PersistentRecordCache::Open(path, CacheMode::kReadWrite, 1, options);
  ASSERT_TRUE(cache.ok());
  const StoredRecord a1 = MakeRecord(1, "k1", 1.0);
  const StoredRecord a2 = MakeRecord(1, "k2", 2.0);
  const StoredRecord b1 = MakeRecord(2, "k1", 3.0);
  const StoredRecord b2 = MakeRecord(2, "k2", 4.0);
  (*cache)->Insert(1, a1.key, a1.features, a1.eval);
  (*cache)->Insert(1, a2.key, a2.features, a2.eval);
  (*cache)->Insert(2, b1.key, b1.features, b1.eval);
  (*cache)->Insert(2, b2.key, b2.features, b2.eval);
  // Task 1 was hit most recently: ALL of task 2's records go first, even
  // though task 2's inserts are newer than task 1's.
  EXPECT_TRUE((*cache)->Get(1, "k1", nullptr));

  MODIS_CHECK_OK((*cache)->Flush());
  EXPECT_EQ((*cache)->stats().evicted, 2u);
  EXPECT_TRUE((*cache)->Contains(1, "k1"));
  EXPECT_TRUE((*cache)->Contains(1, "k2"));
  EXPECT_FALSE((*cache)->Contains(2, "k1"));
  EXPECT_FALSE((*cache)->Contains(2, "k2"));
  EXPECT_LE(fs::file_size(path), options.max_bytes);
}

// ------------------------------------------------------------ concurrency

TEST(PersistentRecordCacheTest, ConcurrentReadersAndOneWriterStayConsistent) {
  const std::string path = TempLogPath("concurrent.rlog");
  auto opened = PersistentRecordCache::Open(path, CacheMode::kReadWrite, 9);
  ASSERT_TRUE(opened.ok());
  PersistentRecordCache* cache = opened->get();

  Evaluation eval;
  eval.raw = {1.0, 2.0};
  eval.normalized = {0.25, 0.5};
  constexpr int kBase = 32;
  constexpr int kFresh = 64;
  for (int i = 0; i < kBase; ++i) {
    cache->Insert("base" + std::to_string(i), {double(i)}, eval);
  }
  MODIS_CHECK_OK(cache->Flush());

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([cache] {
      for (int round = 0; round < 200; ++round) {
        const std::string key = "base" + std::to_string(round % kBase);
        StoredRecord record;
        EXPECT_TRUE(cache->Get(9, key, &record));
        EXPECT_EQ(record.key, key);
        EXPECT_EQ(record.eval.normalized.size(), 2u);
        cache->Contains("fresh" + std::to_string(round % kFresh));
      }
    });
  }
  std::thread writer([cache, &eval] {
    for (int i = 0; i < kFresh; ++i) {
      cache->Insert("fresh" + std::to_string(i), {double(i), 1.0}, eval);
      if (i % 8 == 7) MODIS_CHECK_OK(cache->Flush());
    }
  });
  for (std::thread& r : readers) r.join();
  writer.join();
  MODIS_CHECK_OK(cache->Flush());
  EXPECT_EQ(cache->size(), size_t(kBase + kFresh));
  opened->reset();  // Release the writer lock before reloading.

  std::vector<StoredRecord> records;
  auto log = RecordLog::Open(path, /*read_only=*/true, &records);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(records.size(), size_t(kBase + kFresh));
  EXPECT_EQ(log->discarded_tail_bytes(), 0u);
}

// ------------------------------------------------------------ end-to-end

/// Fixture of the cache determinism tests: the T2 house task with its
/// wall-clock measure removed (train_time would make the cache-off vs
/// cache-on comparison flaky by definition — see docs/PERSISTENCE.md).
struct DeterminismFixture {
  TabularBench bench;
  SearchUniverse universe;
  SupervisedTask task;

  static DeterminismFixture Make() {
    auto bench = MakeTabularBench(BenchTaskId::kHouse, 0.4);
    EXPECT_TRUE(bench.ok());
    auto universe =
        SearchUniverse::Build(bench->universal, bench->universe_options);
    EXPECT_TRUE(universe.ok());
    SupervisedTask task = bench->task;
    task.measures.clear();
    for (const MeasureSpec& m : bench->task.measures) {
      if (m.name != "train_time") task.measures.push_back(m);
    }
    EXPECT_GE(task.measures.size(), 2u);
    return {std::move(bench).value(), std::move(universe).value(),
            std::move(task)};
  }

  ModisConfig Config(const std::string& cache_path) const {
    ModisConfig cfg;
    cfg.epsilon = 0.25;
    cfg.max_states = 90;
    cfg.max_level = 3;
    cfg.record_cache_path = cache_path;
    return cfg;
  }

  ModisResult Run(const ModisConfig& cfg, bool surrogate) {
    SupervisedEvaluator evaluator(task, bench.model->Clone());
    std::unique_ptr<PerformanceOracle> oracle;
    if (surrogate) {
      oracle = std::make_unique<MoGbmOracle>(&evaluator);
    } else {
      oracle = std::make_unique<ExactOracle>(&evaluator);
    }
    auto result = RunBiModis(universe, oracle.get(), cfg);
    EXPECT_TRUE(result.ok());
    return std::move(result).value();
  }
};

void ExpectSameSkyline(ModisResult a, ModisResult b) {
  EXPECT_EQ(a.valuated_states, b.valuated_states);
  EXPECT_EQ(a.generated_states, b.generated_states);
  EXPECT_EQ(a.pruned_states, b.pruned_states);
  ASSERT_EQ(a.skyline.size(), b.skyline.size());
  ASSERT_FALSE(a.skyline.empty());
  auto by_signature = [](const SkylineEntry& x, const SkylineEntry& y) {
    return x.state.Signature() < y.state.Signature();
  };
  std::sort(a.skyline.begin(), a.skyline.end(), by_signature);
  std::sort(b.skyline.begin(), b.skyline.end(), by_signature);
  for (size_t i = 0; i < a.skyline.size(); ++i) {
    const SkylineEntry& x = a.skyline[i];
    const SkylineEntry& y = b.skyline[i];
    EXPECT_EQ(x.state.Signature(), y.state.Signature());
    EXPECT_EQ(x.level, y.level);
    ASSERT_EQ(x.eval.normalized.size(), y.eval.normalized.size());
    for (size_t j = 0; j < x.eval.normalized.size(); ++j) {
      EXPECT_DOUBLE_EQ(x.eval.normalized[j], y.eval.normalized[j]);
      EXPECT_DOUBLE_EQ(x.eval.raw[j], y.eval.raw[j]);
    }
  }
}

TEST(CacheDeterminismTest, ExactOracleOffColdWarmAllAgree) {
  auto f = DeterminismFixture::Make();
  const std::string path = TempLogPath("exact_determinism.rlog");

  ModisResult off = f.Run(f.Config(""), /*surrogate=*/false);
  ModisResult cold = f.Run(f.Config(path), /*surrogate=*/false);
  ModisResult warm = f.Run(f.Config(path), /*surrogate=*/false);

  // Cold run: cache engaged but empty, so it trains everything and only
  // writes. Off vs cold must be byte-identical.
  EXPECT_FALSE(off.record_cache_active);
  EXPECT_TRUE(cold.record_cache_active);
  EXPECT_TRUE(warm.record_cache_active);
  EXPECT_EQ(cold.record_cache_stats.loaded_records, 0u);
  EXPECT_EQ(cold.oracle_stats.persistent_hits, 0u);
  EXPECT_GT(cold.record_cache_stats.appended, 0u);
  EXPECT_EQ(cold.oracle_stats.exact_evals, off.oracle_stats.exact_evals);

  // Warm run: every previously seen state replays from the log — zero
  // exact trainings.
  EXPECT_EQ(warm.oracle_stats.exact_evals, 0u);
  EXPECT_EQ(warm.oracle_stats.persistent_hits,
            cold.oracle_stats.exact_evals);
  EXPECT_EQ(warm.record_cache_stats.loaded_records,
            cold.record_cache_stats.appended);

  ExpectSameSkyline(off, std::move(cold));
  ExpectSameSkyline(f.Run(f.Config(""), false), std::move(warm));
}

TEST(CacheDeterminismTest, SurrogateOracleReplaysTheColdPlan) {
  // The MO-GBM oracle consumes policy randomness while planning; the
  // persistent substitution happens after each policy decision, so a warm
  // run replays the cold run's plan verbatim: same surrogate count, zero
  // trainings, identical skyline.
  auto f = DeterminismFixture::Make();
  const std::string path = TempLogPath("surrogate_determinism.rlog");

  ModisResult off = f.Run(f.Config(""), /*surrogate=*/true);
  ModisResult cold = f.Run(f.Config(path), /*surrogate=*/true);
  ModisResult warm = f.Run(f.Config(path), /*surrogate=*/true);

  EXPECT_EQ(cold.oracle_stats.exact_evals, off.oracle_stats.exact_evals);
  EXPECT_EQ(cold.oracle_stats.surrogate_evals,
            off.oracle_stats.surrogate_evals);

  EXPECT_EQ(warm.oracle_stats.exact_evals, 0u);
  EXPECT_EQ(warm.oracle_stats.persistent_hits,
            cold.oracle_stats.exact_evals);
  EXPECT_EQ(warm.oracle_stats.surrogate_evals,
            cold.oracle_stats.surrogate_evals);

  ExpectSameSkyline(off, std::move(cold));
  ExpectSameSkyline(f.Run(f.Config(""), true), std::move(warm));
}

TEST(CacheDeterminismTest, TaskFingerprintSeparatesMeasureSets) {
  auto f = DeterminismFixture::Make();
  const uint64_t a =
      ModisEngine::TaskFingerprint(f.universe, f.task.measures, "");
  const uint64_t b =
      ModisEngine::TaskFingerprint(f.universe, f.bench.task.measures, "");
  EXPECT_NE(a, b);  // With vs without train_time.
  const uint64_t salted =
      ModisEngine::TaskFingerprint(f.universe, f.task.measures, "model-v2");
  EXPECT_NE(a, salted);
  EXPECT_EQ(a, ModisEngine::TaskFingerprint(f.universe, f.task.measures, ""));
}

TEST(CacheDeterminismTest, TaskFingerprintSeesCellContent) {
  // Same schema, same shape, different data (another generator scale →
  // different values but identical columns) must not share records.
  auto bench_a = MakeTabularBench(BenchTaskId::kHouse, 0.4);
  auto bench_b = MakeTabularBench(BenchTaskId::kHouse, 0.4);
  ASSERT_TRUE(bench_a.ok() && bench_b.ok());
  // Perturb one cell of an otherwise identical universal table.
  Table perturbed = bench_b->universal;
  auto universe_a = SearchUniverse::Build(bench_a->universal,
                                          bench_a->universe_options);
  ASSERT_TRUE(universe_a.ok());
  const uint64_t fp_same = ModisEngine::TaskFingerprint(
      *universe_a, bench_a->task.measures, "");
  {
    auto universe_b =
        SearchUniverse::Build(perturbed, bench_b->universe_options);
    ASSERT_TRUE(universe_b.ok());
    // Identical generation → identical fingerprint.
    EXPECT_EQ(fp_same, ModisEngine::TaskFingerprint(
                           *universe_b, bench_b->task.measures, ""));
  }
  perturbed.Set(0, 0, Value(int64_t{987654}));
  auto universe_c =
      SearchUniverse::Build(perturbed, bench_b->universe_options);
  ASSERT_TRUE(universe_c.ok());
  EXPECT_NE(fp_same, ModisEngine::TaskFingerprint(
                         *universe_c, bench_b->task.measures, ""));
}

TEST(CacheDeterminismTest, BrokenCachePathDegradesToColdRun) {
  auto f = DeterminismFixture::Make();
  // A directory is not a valid log file; the engine must warn and search
  // without persistence rather than fail.
  ModisConfig cfg = f.Config(::testing::TempDir());
  ModisResult result = f.Run(cfg, /*surrogate=*/false);
  EXPECT_GT(result.oracle_stats.exact_evals, 0u);
  EXPECT_FALSE(result.record_cache_active);
  EXPECT_EQ(result.record_cache_stats.loaded_records, 0u);
  EXPECT_EQ(result.record_cache_stats.appended, 0u);
  ExpectSameSkyline(f.Run(f.Config(""), false), std::move(result));
}

#if !defined(_WIN32)

/// The cross-process cache contract, both halves (docs/MULTIPROCESS.md):
///
///  1. Fail-fast half (unchanged): while a classic host holds the
///     LIFETIME writer lock on a cache file, a raw open in another
///     process neither hangs nor corrupts anything — it fails fast with
///     FailedPrecondition.
///  2. Positive half (the worker-pool contract): processes that attach
///     in *shared* mode (OpenShared — how every member of a `--workers`
///     pool opens the cache) read each other's published records WARM
///     while all of them are live. No degraded-to-cold fallback.
TEST(CacheDeterminismTest, CrossProcessReadersShareALiveCacheWarm) {
  const std::string path = TempLogPath("xproc_live_host.rlog");
  int ready[2] = {-1, -1}, release[2] = {-1, -1};
  ASSERT_EQ(::pipe(ready), 0);
  ASSERT_EQ(::pipe(release), 0);

  // --- Half 1: a lifetime-writer host still repels raw opens. -----------
  // fork() is safe here: gtest runs this process single-threaded
  // between tests, and the child only opens a file.
  const pid_t locker = ::fork();
  ASSERT_GE(locker, 0);
  if (locker == 0) {
    auto host_cache =
        PersistentRecordCache::Open(path, CacheMode::kReadWrite, 7);
    char byte = host_cache.ok() ? '1' : '0';
    (void)!::write(ready[1], &byte, 1);
    (void)!::read(release[0], &byte, 1);
    ::_exit(0);
  }
  char byte = 0;
  ASSERT_EQ(::read(ready[0], &byte, 1), 1);
  ASSERT_EQ(byte, '1') << "child failed to take the writer lock";

  // A raw read-only open from this process fails fast — no hang (flock
  // is taken with LOCK_NB), no partial scan.
  std::vector<StoredRecord> records;
  auto reader = RecordLog::Open(path, /*read_only=*/true, &records);
  EXPECT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(records.empty());

  ASSERT_EQ(::write(release[1], "x", 1), 1);
  int status = 0;
  ASSERT_EQ(::waitpid(locker, &status, 0), locker);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  for (int fd : {ready[0], ready[1], release[0], release[1]}) ::close(fd);

  // --- Half 2: shared-mode attachments read each other warm, live. ------
  // This process plays one pool member: attach shared, publish records.
  auto writer = PersistentRecordCache::OpenShared(path, /*fingerprint=*/7);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  EXPECT_TRUE((*writer)->shared());
  const StoredRecord warm_a = MakeRecord(7, "warm-a", 1.0);
  const StoredRecord warm_b = MakeRecord(7, "warm-b", 2.0);
  (*writer)->Insert(warm_a.fingerprint, warm_a.key, warm_a.features,
                    warm_a.eval);
  (*writer)->Insert(warm_b.fingerprint, warm_b.key, warm_b.features,
                    warm_b.eval);
  ASSERT_TRUE((*writer)->Flush().ok());  // Publish through a short window.

  // A sibling process attaches shared WHILE this attachment is live and
  // must see the published records immediately — the warm answer.
  const pid_t sibling = ::fork();
  ASSERT_GE(sibling, 0);
  if (sibling == 0) {
    auto reader_cache = PersistentRecordCache::OpenShared(path, 7);
    if (!reader_cache.ok()) ::_exit(2);
    StoredRecord got;
    if (!(*reader_cache)->Get(7, "warm-a", &got)) ::_exit(3);
    if (got.features != MakeRecord(7, "warm-a", 1.0).features) ::_exit(4);
    if (!(*reader_cache)->Get(7, "warm-b", &got)) ::_exit(5);
    // And the sibling can publish its own record into the live file.
    const StoredRecord warm_c = MakeRecord(7, "warm-c", 3.0);
    (*reader_cache)->Insert(warm_c.fingerprint, warm_c.key, warm_c.features,
                            warm_c.eval);
    if (!(*reader_cache)->Flush().ok()) ::_exit(6);
    ::_exit(0);
  }
  status = 0;
  ASSERT_EQ(::waitpid(sibling, &status, 0), sibling);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0)
      << "shared-mode sibling was cold or could not publish";

  // The first attachment picks the sibling's publish up on refresh —
  // the same path a pool worker takes between queries.
  ASSERT_TRUE((*writer)->RefreshIfChanged().ok());
  StoredRecord theirs;
  EXPECT_TRUE((*writer)->Get(7, "warm-c", &theirs));

  // Once every attachment is gone the file reloads cleanly raw.
  writer->reset();
  records.clear();
  auto reload = RecordLog::Open(path, /*read_only=*/true, &records);
  ASSERT_TRUE(reload.ok()) << reload.status().ToString();
  EXPECT_EQ(reload->discarded_tail_bytes(), 0u);
  EXPECT_EQ(records.size(), 3u);
}

#endif  // !_WIN32

}  // namespace
}  // namespace modis
