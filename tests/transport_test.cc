/// Concurrency and fault-injection battery of the serving transport
/// (src/service/transport.h) and its wire dispatcher: endpoint grammar,
/// malformed/truncated/oversized/out-of-range requests, mid-request
/// disconnects, the `"metrics"` verb, TCP-vs-unix answer equivalence,
/// and the graceful-drain contract (stop mid-stream with in-flight
/// queries => every accepted request is answered, identically to an
/// undisturbed run, and no session thread leaks). The `sanitize-thread`
/// CI job runs this suite under ThreadSanitizer.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "service/discovery_service.h"
#include "service/json.h"
#include "service/metrics.h"
#include "service/transport.h"
#include "service/wire.h"

namespace modis {
namespace {

namespace fs = std::filesystem;

constexpr double kRowScale = 0.4;

std::string TempPath(const std::string& name) {
  const fs::path path = fs::path(::testing::TempDir()) / name;
  fs::remove(path);
  fs::remove(fs::path(path.string() + ".compact"));
  return path.string();
}

Endpoint UnixEndpoint(const std::string& name) {
  Endpoint endpoint;
  endpoint.kind = Endpoint::Kind::kUnix;
  endpoint.path = TempPath(name);
  return endpoint;
}

Endpoint TcpAnyPort() {
  Endpoint endpoint;
  endpoint.kind = Endpoint::Kind::kTcp;
  endpoint.host = "127.0.0.1";
  endpoint.port = 0;  // Resolved at bind.
  return endpoint;
}

/// The canonical test query (same shape as tests/service_test.cc): T2 at
/// a small budget, wall-clock measures excluded so answers are
/// bit-reproducible.
DiscoveryRequest MakeRequest(const std::string& variant) {
  DiscoveryRequest request;
  request.task = "T2";
  request.variant = variant;
  request.epsilon = 0.25;
  request.budget = 40;
  request.maxl = 2;
  request.measures = {"f1", "acc", "fisher", "mi"};
  return request;
}

DiscoveryService::Options SmallServiceOptions() {
  DiscoveryService::Options options;
  options.sessions = 2;
  options.queue_capacity = 16;
  options.valuation_threads = 2;
  options.task_row_scale = kRowScale;
  return options;
}

/// An in-process discovery host behind a real LineServer: the service,
/// the shared line handler, and a background accept loop. Stop() (or the
/// destructor) runs the drain and joins.
class TestHost {
 public:
  explicit TestHost(
      DiscoveryService::Options service_options = SmallServiceOptions(),
      LineServer::Options server_options = LineServer::Options())
      : service_(service_options),
        server_(
            [this](const std::string& line) {
              return HandleServiceLine(&service_, line);
            },
            server_options, service_.metrics()) {}

  ~TestHost() { Stop(); }

  Status Listen(const Endpoint& endpoint) { return server_.Listen(endpoint); }

  void Start() {
    serving_ = std::thread([this] { server_.Serve(); });
  }

  /// Requests the drain and waits for Serve() to return. Idempotent.
  void Stop() {
    server_.RequestStop();
    if (serving_.joinable()) serving_.join();
  }

  DiscoveryService& service() { return service_; }
  LineServer& server() { return server_; }
  const Endpoint& endpoint(size_t i = 0) const {
    return server_.endpoints().at(i);
  }

 private:
  DiscoveryService service_;
  LineServer server_;
  std::thread serving_;
};

void ExpectSameSkylines(const DiscoveryResponse& a,
                        const DiscoveryResponse& b) {
  ASSERT_EQ(a.skyline.size(), b.skyline.size());
  ASSERT_FALSE(a.skyline.empty());
  auto sorted = [](const DiscoveryResponse& r) {
    std::vector<DiscoverySkylineRow> rows = r.skyline;
    std::sort(rows.begin(), rows.end(),
              [](const DiscoverySkylineRow& x, const DiscoverySkylineRow& y) {
                return x.signature < y.signature;
              });
    return rows;
  };
  const auto rows_a = sorted(a);
  const auto rows_b = sorted(b);
  for (size_t i = 0; i < rows_a.size(); ++i) {
    EXPECT_EQ(rows_a[i].signature, rows_b[i].signature);
    ASSERT_EQ(rows_a[i].raw.size(), rows_b[i].raw.size());
    for (size_t j = 0; j < rows_a[i].raw.size(); ++j) {
      EXPECT_DOUBLE_EQ(rows_a[i].raw[j], rows_b[i].raw[j]);
      EXPECT_DOUBLE_EQ(rows_a[i].normalized[j], rows_b[i].normalized[j]);
    }
  }
}

// ------------------------------------------------------------- endpoints

TEST(EndpointTest, ParsesEverySpellingOfTheGrammar) {
  auto unix_explicit = ParseEndpoint("unix:/tmp/x.sock");
  ASSERT_TRUE(unix_explicit.ok());
  EXPECT_EQ(unix_explicit->kind, Endpoint::Kind::kUnix);
  EXPECT_EQ(unix_explicit->path, "/tmp/x.sock");
  EXPECT_EQ(unix_explicit->ToString(), "unix:/tmp/x.sock");

  auto unix_bare = ParseEndpoint("/var/run/modis.sock");
  ASSERT_TRUE(unix_bare.ok());
  EXPECT_EQ(unix_bare->kind, Endpoint::Kind::kUnix);

  auto tcp_explicit = ParseEndpoint("tcp:127.0.0.1:7077");
  ASSERT_TRUE(tcp_explicit.ok());
  EXPECT_EQ(tcp_explicit->kind, Endpoint::Kind::kTcp);
  EXPECT_EQ(tcp_explicit->host, "127.0.0.1");
  EXPECT_EQ(tcp_explicit->port, 7077);
  EXPECT_EQ(tcp_explicit->ToString(), "tcp:127.0.0.1:7077");

  auto tcp_short = ParseEndpoint("localhost:9000");
  ASSERT_TRUE(tcp_short.ok());
  EXPECT_EQ(tcp_short->kind, Endpoint::Kind::kTcp);
  EXPECT_EQ(tcp_short->host, "localhost");
  EXPECT_EQ(tcp_short->port, 9000);

  // A relative socket file name (no '/', no ':') is a unix path too.
  auto relative = ParseEndpoint("modis.sock");
  ASSERT_TRUE(relative.ok());
  EXPECT_EQ(relative->kind, Endpoint::Kind::kUnix);
}

TEST(EndpointTest, RejectsMalformedSpecs) {
  for (const char* bad : {"", "unix:", "tcp:", "tcp:nohost", "tcp:host:",
                          "tcp:host:99999", "tcp:host:12x4", "tcp::80",
                          "host:port"}) {
    EXPECT_FALSE(ParseEndpoint(bad).ok()) << bad;
  }
}

// -------------------------------------------------------- fault injection

TEST(TransportFaultTest,
     MalformedAndOutOfRangeLinesGetErrorsOnOneLiveConnection) {
  TestHost host;
  ASSERT_TRUE(host.Listen(UnixEndpoint("fault_basic.sock")).ok());
  host.Start();

  auto channel = ClientChannel::Connect(host.endpoint());
  ASSERT_TRUE(channel.ok()) << channel.status().ToString();

  const std::vector<std::string> bad_lines = {
      "this is not json",
      "{\"task\":",                          // Truncated document.
      "[1,2,3]",                             // Not an object.
      "{\"variant\":\"bi\"}",                // Missing task.
      "{\"verb\":\"frobnicate\"}",           // Unknown verb.
      "{\"task\":\"T2\",\"budget\":1e300}",  // Out-of-range count.
      "{\"task\":\"T2\",\"budget\":-4}",     // Negative count.
      "{\"task\":\"T2\",\"maxl\":2.5}",      // Non-integer count.
      "{\"task\":\"T2\",\"epsilon\":-1}",    // Out-of-range epsilon.
      "{\"task\":\"T2\",\"alpha\":7}",       // Out-of-range alpha.
      "{\"task\":\"T2\",\"seed\":1e17}",     // Seed beyond 2^53.
  };
  for (const std::string& line : bad_lines) {
    auto reply = channel->RoundTrip(line);
    ASSERT_TRUE(reply.ok()) << "connection died after: " << line;
    auto doc = JsonValue::Parse(reply.value());
    ASSERT_TRUE(doc.ok()) << reply.value();
    EXPECT_FALSE(doc->GetBool("ok", true)) << line;
    EXPECT_EQ(doc->GetString("code", ""), "InvalidArgument") << line;
  }

  // The connection survived the whole barrage: a valid verb still works.
  auto metrics = channel->RoundTrip("{\"verb\":\"metrics\"}");
  ASSERT_TRUE(metrics.ok());
  auto doc = JsonValue::Parse(metrics.value());
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(doc->GetBool("ok", false));

  host.Stop();
  const MetricsSnapshot snapshot = host.service().SnapshotMetrics();
  EXPECT_EQ(snapshot.connections_active, 0u);
  EXPECT_EQ(snapshot.lines_served, bad_lines.size() + 1);
}

TEST(TransportFaultTest, OversizedLineIsAnsweredAndConnectionClosed) {
  LineServer::Options tiny;
  tiny.max_line_bytes = 512;
  TestHost host(SmallServiceOptions(), tiny);
  ASSERT_TRUE(host.Listen(UnixEndpoint("fault_oversize.sock")).ok());
  host.Start();

  auto channel = ClientChannel::Connect(host.endpoint());
  ASSERT_TRUE(channel.ok());
  auto reply = channel->RoundTrip(std::string(4096, 'a'));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  auto doc = JsonValue::Parse(reply.value());
  ASSERT_TRUE(doc.ok()) << reply.value();
  EXPECT_FALSE(doc->GetBool("ok", true));
  EXPECT_NE(doc->GetString("error", "").find("exceeds"), std::string::npos);
  // The stream cannot be resynced after an oversized line: closed.
  EXPECT_FALSE(channel->ReceiveLine().ok());

  // The host is unharmed; a new connection serves normally.
  auto fresh = ClientChannel::Connect(host.endpoint());
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(fresh->RoundTrip("{\"verb\":\"metrics\"}").ok());

  host.Stop();
  const MetricsSnapshot snapshot = host.service().SnapshotMetrics();
  EXPECT_EQ(snapshot.oversized_lines, 1u);
  EXPECT_EQ(snapshot.connections_active, 0u);
}

TEST(TransportFaultTest, TruncatedFramesAndMidRequestDisconnectsLeakNothing) {
  TestHost host;
  ASSERT_TRUE(host.Listen(UnixEndpoint("fault_disconnect.sock")).ok());
  host.Start();

  {
    // Truncated frame: half a request, no terminating newline, then
    // close. The server answers the fragment with one clean error line
    // (usually into a closed socket) and moves on.
    auto channel = ClientChannel::Connect(host.endpoint());
    ASSERT_TRUE(channel.ok());
    ASSERT_TRUE(channel->SendRaw("{\"task\":\"T2\",\"varia").ok());
    channel->Close();
  }
  {
    // Mid-request disconnect: a full line, but the client vanishes
    // before reading the response — the server's write fails; never the
    // host.
    auto channel = ClientChannel::Connect(host.endpoint());
    ASSERT_TRUE(channel.ok());
    ASSERT_TRUE(channel->SendLine("not json at all").ok());
    channel->Close();
  }
  {
    // Empty connection: open, say nothing, close.
    auto channel = ClientChannel::Connect(host.endpoint());
    ASSERT_TRUE(channel.ok());
    channel->Close();
  }

  // The host still serves after all three abuse patterns.
  auto probe = ClientChannel::Connect(host.endpoint());
  ASSERT_TRUE(probe.ok());
  auto reply = probe->RoundTrip("{\"verb\":\"metrics\"}");
  ASSERT_TRUE(reply.ok());
  auto doc = JsonValue::Parse(reply.value());
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(doc->GetBool("ok", false));

  // No session thread leaks: the drain returns and every connection is
  // accounted for.
  host.Stop();
  const MetricsSnapshot snapshot = host.service().SnapshotMetrics();
  EXPECT_EQ(snapshot.connections_active, 0u);
  EXPECT_EQ(snapshot.connections_opened, 4u);
}

// ------------------------------------------------------------ metrics verb

TEST(TransportTest, MetricsVerbExportsCountersAndHistograms) {
  DiscoveryService::Options options = SmallServiceOptions();
  options.default_cache_path = TempPath("metrics_verb.rlog");
  TestHost host(options);
  ASSERT_TRUE(host.Listen(UnixEndpoint("metrics_verb.sock")).ok());
  host.Start();

  auto channel = ClientChannel::Connect(host.endpoint());
  ASSERT_TRUE(channel.ok());
  auto served =
      channel->RoundTrip(SerializeDiscoveryRequest(MakeRequest("bi")));
  ASSERT_TRUE(served.ok());
  auto response = ParseDiscoveryResponse(served.value());
  ASSERT_TRUE(response.ok()) << response.status().ToString();

  auto reply = channel->RoundTrip("{\"verb\":\"metrics\"}");
  ASSERT_TRUE(reply.ok());
  auto doc = JsonValue::Parse(reply.value());
  ASSERT_TRUE(doc.ok()) << reply.value();
  EXPECT_TRUE(doc->GetBool("ok", false));
  const JsonValue* metrics = doc->Get("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_EQ(metrics->GetNumber("accepted", -1), 1.0);
  EXPECT_EQ(metrics->GetNumber("served", -1), 1.0);
  EXPECT_EQ(metrics->GetNumber("rejected", -1), 0.0);
  EXPECT_EQ(metrics->GetNumber("failed", -1), 0.0);
  EXPECT_EQ(metrics->GetNumber("queue_depth", -1), 0.0);
  EXPECT_EQ(metrics->GetNumber("live_contexts", -1), 1.0);
  EXPECT_EQ(metrics->GetNumber("context_builds", -1), 1.0);
  EXPECT_EQ(metrics->GetNumber("cache_files", -1), 1.0);
  EXPECT_GT(metrics->GetNumber("cache_appends", -1), 0.0);
  EXPECT_GT(metrics->GetNumber("cache_bytes", -1), 0.0);
  EXPECT_EQ(metrics->GetNumber("connections_active", -1), 1.0);
  // lines_served counts lines already answered when the snapshot was
  // taken: the discovery query, not the metrics line being served.
  EXPECT_EQ(metrics->GetNumber("lines_served", -1), 1.0);
  EXPECT_FALSE(metrics->GetBool("draining", true));
  const JsonValue* run_ms = metrics->Get("run_ms");
  ASSERT_NE(run_ms, nullptr);
  EXPECT_EQ(run_ms->GetNumber("count", -1), 1.0);
  EXPECT_GT(run_ms->GetNumber("sum_ms", -1), 0.0);
  EXPECT_GE(run_ms->GetNumber("p99_ms", -1),
            run_ms->GetNumber("p50_ms", -1));

  host.Stop();
}

// ----------------------------------------------------- TCP == unix answers

TEST(TransportTest, TcpAndUnixTransportsServeIdenticalWarmAnswers) {
  DiscoveryService::Options options = SmallServiceOptions();
  options.default_cache_path = TempPath("tcp_unix.rlog");
  TestHost host(options);
  ASSERT_TRUE(host.Listen(UnixEndpoint("tcp_unix.sock")).ok());
  ASSERT_TRUE(host.Listen(TcpAnyPort()).ok());
  ASSERT_EQ(host.server().endpoints().size(), 2u);
  EXPECT_NE(host.endpoint(1).port, 0) << "ephemeral port not resolved";
  host.Start();

  const std::string request = SerializeDiscoveryRequest(MakeRequest("bi"));

  // Cold over unix: trains and records.
  auto unix_channel = ClientChannel::Connect(host.endpoint(0));
  ASSERT_TRUE(unix_channel.ok());
  auto cold_reply = unix_channel->RoundTrip(request);
  ASSERT_TRUE(cold_reply.ok());
  auto cold = ParseDiscoveryResponse(cold_reply.value());
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_GT(cold->exact_evals, 0u);

  // Warm over TCP: replays everything, answers identically.
  auto tcp_channel = ClientChannel::Connect(host.endpoint(1));
  ASSERT_TRUE(tcp_channel.ok()) << tcp_channel.status().ToString();
  auto warm_reply = tcp_channel->RoundTrip(request);
  ASSERT_TRUE(warm_reply.ok());
  auto warm = ParseDiscoveryResponse(warm_reply.value());
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_EQ(warm->exact_evals, 0u);
  EXPECT_EQ(warm->persistent_hits, cold->exact_evals);
  ExpectSameSkylines(*cold, *warm);

  host.Stop();
}

// ------------------------------------------------------------------ drain

/// The lifecycle acceptance gate: 4 concurrent clients with in-flight
/// queries, stop requested mid-stream (exactly what the SIGTERM handler
/// triggers), and every accepted request still gets its full answer —
/// byte-identical to an undisturbed run — before Serve() returns.
TEST(TransportDrainTest, StopMidStreamCompletesAllAcceptedWork) {
  const std::vector<std::string> variants = {"apx", "nobi", "bi", "div"};

  // Undisturbed reference: same service shape, no transport, no drain.
  std::vector<DiscoveryResponse> reference;
  {
    DiscoveryService::Options options = SmallServiceOptions();
    options.sessions = 4;
    DiscoveryService service(options);
    ASSERT_TRUE(service.Preload("T2").ok());
    for (const std::string& variant : variants) {
      auto response = service.Answer(MakeRequest(variant));
      ASSERT_TRUE(response.ok()) << response.status().ToString();
      reference.push_back(std::move(response).value());
    }
  }

  DiscoveryService::Options options = SmallServiceOptions();
  options.sessions = 4;
  TestHost host(options);
  ASSERT_TRUE(host.Listen(UnixEndpoint("drain.sock")).ok());
  host.Start();
  ASSERT_TRUE(host.service().Preload("T2").ok());

  // 4 clients send their requests, then block on the response.
  std::vector<Result<std::string>> replies(
      variants.size(), Result<std::string>(Status::Internal("unset")));
  std::vector<std::thread> clients;
  std::atomic<size_t> sent{0};
  for (size_t i = 0; i < variants.size(); ++i) {
    clients.emplace_back([&, i] {
      auto channel = ClientChannel::Connect(host.endpoint());
      if (!channel.ok()) {
        replies[i] = channel.status();
        sent.fetch_add(1);
        return;
      }
      const Status submitted = channel->SendLine(
          SerializeDiscoveryRequest(MakeRequest(variants[i])));
      sent.fetch_add(1);
      if (!submitted.ok()) {
        replies[i] = submitted;
        return;
      }
      replies[i] = channel->ReceiveLine();
    });
  }

  // Stop once every request is on the wire and accepted by the service —
  // the queries are genuinely in flight at that point.
  while (sent.load() < variants.size()) {
    std::this_thread::yield();
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (host.service().stats().accepted < variants.size() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(host.service().stats().accepted, variants.size());
  host.server().RequestStop();

  for (std::thread& client : clients) client.join();
  host.Stop();  // Serve() has already returned; join its thread.

  // Every accepted request was answered in full, identically to the
  // undisturbed run.
  for (size_t i = 0; i < variants.size(); ++i) {
    ASSERT_TRUE(replies[i].ok())
        << variants[i] << ": " << replies[i].status().ToString();
    auto response = ParseDiscoveryResponse(replies[i].value());
    ASSERT_TRUE(response.ok())
        << variants[i] << ": " << response.status().ToString();
    ExpectSameSkylines(reference[i], *response);
  }

  const MetricsSnapshot snapshot = host.service().SnapshotMetrics();
  EXPECT_EQ(snapshot.served, variants.size());
  EXPECT_EQ(snapshot.failed, 0u);
  EXPECT_EQ(snapshot.queue_depth, 0u);
  EXPECT_EQ(snapshot.connections_active, 0u);
  EXPECT_TRUE(snapshot.draining);

  // A post-drain connection attempt is refused: the listener is gone.
  EXPECT_FALSE(ClientChannel::Connect(host.endpoint()).ok());
}

}  // namespace
}  // namespace modis
