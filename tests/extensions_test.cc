/// Tests for the extension components: NSGA-II (the paper's evolutionary
/// alternative), hypervolume indicators, kNN / naive-Bayes model families,
/// the NSGA-II-over-bitmaps adapter, and running-graph reconstruction.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "baselines/nsga2_modis.h"
#include "core/algorithms.h"
#include "core/running_graph.h"
#include "datagen/tasks.h"
#include "ml/knn.h"
#include "ml/metrics.h"
#include "ml/naive_bayes.h"
#include "moo/hypervolume.h"
#include "moo/nsga2.h"

namespace modis {
namespace {

// ---------------------------------------------------------------- NSGA-II

TEST(FastNonDominatedSortTest, RanksFronts) {
  std::vector<PerfVector> objs{{0.1, 0.9}, {0.9, 0.1}, {0.5, 0.5},
                               {0.6, 0.6}, {0.9, 0.9}};
  auto ranks = FastNonDominatedSort(objs);
  EXPECT_EQ(ranks[0], 0);
  EXPECT_EQ(ranks[1], 0);
  EXPECT_EQ(ranks[2], 0);
  EXPECT_EQ(ranks[3], 1);  // Dominated by {0.5,0.5} only.
  EXPECT_EQ(ranks[4], 2);  // Dominated by {0.6,0.6} too.
}

TEST(FastNonDominatedSortTest, Front0MatchesParetoFront) {
  Rng rng(1);
  std::vector<PerfVector> objs;
  for (int i = 0; i < 80; ++i) {
    objs.push_back({rng.Uniform(), rng.Uniform(), rng.Uniform()});
  }
  auto ranks = FastNonDominatedSort(objs);
  auto front = ParetoFrontNaive(objs);
  std::set<size_t> front_set(front.begin(), front.end());
  for (size_t i = 0; i < objs.size(); ++i) {
    // Duplicates can differ (front dedups); skip them.
    bool duplicate = false;
    for (size_t j = 0; j < i; ++j) duplicate |= (objs[j] == objs[i]);
    if (duplicate) continue;
    EXPECT_EQ(ranks[i] == 0, front_set.count(i) > 0) << i;
  }
}

TEST(CrowdingDistanceTest, BoundariesAreInfinite) {
  std::vector<PerfVector> front{{0.1, 0.9}, {0.5, 0.5}, {0.9, 0.1}};
  auto d = CrowdingDistance(front);
  EXPECT_TRUE(std::isinf(d[0]));
  EXPECT_TRUE(std::isinf(d[2]));
  EXPECT_FALSE(std::isinf(d[1]));
  EXPECT_GT(d[1], 0.0);
}

TEST(Nsga2Test, FindsFrontOfSeparableProblem) {
  // Objectives: f1 = fraction of zeros in the first half, f2 = fraction of
  // zeros in the second half -> the Pareto front trades the halves.
  const size_t glen = 16;
  Nsga2Fitness fitness =
      [](const std::vector<uint8_t>& g) -> std::optional<PerfVector> {
    double a = 0, b = 0;
    for (size_t i = 0; i < g.size() / 2; ++i) a += g[i] == 0;
    for (size_t i = g.size() / 2; i < g.size(); ++i) b += g[i] == 0;
    return PerfVector{0.01 + a / g.size(), 0.01 + b / g.size()};
  };
  Nsga2Options opts;
  opts.population = 24;
  opts.generations = 20;
  Nsga2Result result = RunNsga2(std::vector<uint8_t>(glen, 0), fitness, opts);
  ASSERT_FALSE(result.front.empty());
  // The all-ones genome (both objectives minimal) must be discovered.
  bool found_ideal = false;
  for (const auto& ind : result.front) {
    bool all_one = true;
    for (uint8_t b : ind.genome) all_one &= (b == 1);
    found_ideal |= all_one;
  }
  EXPECT_TRUE(found_ideal);
  // Front members are mutually non-dominated.
  for (const auto& a : result.front) {
    for (const auto& b : result.front) {
      if (&a != &b) {
        EXPECT_FALSE(Dominates(a.objectives, b.objectives));
      }
    }
  }
}

TEST(Nsga2Test, RespectsEvaluationBudget) {
  Nsga2Fitness fitness =
      [](const std::vector<uint8_t>& g) -> std::optional<PerfVector> {
    return PerfVector{0.5, static_cast<double>(g[0]) + 0.1};
  };
  Nsga2Options opts;
  opts.max_evaluations = 37;
  Nsga2Result result = RunNsga2({1, 0, 1}, fitness, opts);
  EXPECT_LE(result.evaluations, 37u);
}

TEST(Nsga2Test, InfeasibleGenomesAreSkipped) {
  Nsga2Fitness fitness =
      [](const std::vector<uint8_t>& g) -> std::optional<PerfVector> {
    if (g[0] == 0) return std::nullopt;  // Constraint: first bit on.
    return PerfVector{0.5, 0.5};
  };
  Nsga2Options opts;
  opts.population = 10;
  opts.generations = 5;
  Nsga2Result result = RunNsga2({1, 1, 1, 1}, fitness, opts);
  for (const auto& ind : result.front) EXPECT_EQ(ind.genome[0], 1);
}

// ------------------------------------------------------------ Hypervolume

TEST(HypervolumeTest, SinglePoint2D) {
  // Box from (0.2,0.3) to reference (1,1): 0.8 * 0.7.
  EXPECT_NEAR(Hypervolume2D({{0.2, 0.3}}, {1.0, 1.0}), 0.56, 1e-12);
}

TEST(HypervolumeTest, DominatedPointAddsNothing) {
  const double alone = Hypervolume2D({{0.2, 0.3}}, {1.0, 1.0});
  const double with_dominated =
      Hypervolume2D({{0.2, 0.3}, {0.5, 0.5}}, {1.0, 1.0});
  EXPECT_NEAR(alone, with_dominated, 1e-12);
}

TEST(HypervolumeTest, UnionOfBoxes) {
  // {0.2,0.6} and {0.6,0.2} vs ref (1,1): 0.8*0.4 + 0.4*(0.6-0.2).
  EXPECT_NEAR(Hypervolume2D({{0.2, 0.6}, {0.6, 0.2}}, {1.0, 1.0}),
              0.8 * 0.4 + 0.4 * 0.4, 1e-12);
}

TEST(HypervolumeTest, PointsOutsideReferenceIgnored) {
  EXPECT_DOUBLE_EQ(Hypervolume2D({{1.5, 0.2}}, {1.0, 1.0}), 0.0);
  EXPECT_DOUBLE_EQ(Hypervolume2D({}, {1.0, 1.0}), 0.0);
}

TEST(HypervolumeTest, MonteCarloAgreesWith2DExact) {
  Rng rng(2);
  std::vector<PerfVector> pts;
  for (int i = 0; i < 10; ++i) {
    pts.push_back({rng.Uniform(0.05, 0.9), rng.Uniform(0.05, 0.9)});
  }
  const PerfVector ref{1.0, 1.0};
  const double exact = Hypervolume2D(pts, ref);
  Rng mc(3);
  const double estimate = HypervolumeMonteCarlo(pts, ref, 60000, &mc);
  EXPECT_NEAR(estimate, exact, 0.02);
}

TEST(HypervolumeTest, MoreNonDominatedPointsNeverShrink) {
  Rng rng(4);
  std::vector<PerfVector> pts{{0.3, 0.3, 0.3}};
  const PerfVector ref{1.0, 1.0, 1.0};
  const double before = Hypervolume(pts, ref, 30000, 5);
  pts.push_back({0.1, 0.6, 0.6});
  const double after = Hypervolume(pts, ref, 30000, 5);
  EXPECT_GE(after, before - 0.01);
}

// --------------------------------------------------------------- kNN / NB

MlDataset Blobs(size_t n, uint64_t seed, int classes = 2) {
  Rng rng(seed);
  MlDataset ds;
  ds.task = TaskKind::kClassification;
  ds.num_classes = classes;
  ds.x = Matrix(n, 2);
  ds.y.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const int k = static_cast<int>(rng.UniformInt(classes));
    ds.x.At(i, 0) = 3.0 * k + rng.Normal(0.0, 0.5);
    ds.x.At(i, 1) = rng.Normal();
    ds.y[i] = k;
  }
  return ds;
}

TEST(KnnTest, ClassifierSeparatesBlobs) {
  MlDataset train = Blobs(300, 10, 3);
  MlDataset test = Blobs(150, 11, 3);
  KnnClassifier knn({.k = 7});
  Rng rng(12);
  ASSERT_TRUE(knn.Fit(train, &rng).ok());
  auto pred = knn.Predict(test.x);
  std::vector<int> pi(pred.begin(), pred.end());
  EXPECT_GT(Accuracy(test.LabelsAsInt(), pi), 0.92);
}

TEST(KnnTest, RegressorInterpolates) {
  Rng rng(13);
  MlDataset ds;
  ds.task = TaskKind::kRegression;
  ds.x = Matrix(200, 1);
  ds.y.resize(200);
  for (size_t i = 0; i < 200; ++i) {
    const double x = rng.Uniform(-3, 3);
    ds.x.At(i, 0) = x;
    ds.y[i] = std::sin(x);
  }
  KnnRegressor knn({.k = 5});
  Rng fit(14);
  ASSERT_TRUE(knn.Fit(ds, &fit).ok());
  Matrix q(1, 1);
  q.At(0, 0) = 1.0;
  EXPECT_NEAR(knn.Predict(q)[0], std::sin(1.0), 0.15);
}

TEST(KnnTest, RejectsWrongTaskAndEmpty) {
  KnnClassifier knn;
  Rng rng(15);
  MlDataset reg;
  reg.task = TaskKind::kRegression;
  EXPECT_FALSE(knn.Fit(reg, &rng).ok());
  MlDataset empty;
  empty.task = TaskKind::kClassification;
  empty.num_classes = 2;
  EXPECT_FALSE(knn.Fit(empty, &rng).ok());
}

TEST(NaiveBayesTest, SeparatesBlobs) {
  MlDataset train = Blobs(400, 16, 3);
  MlDataset test = Blobs(200, 17, 3);
  GaussianNaiveBayes nb;
  Rng rng(18);
  ASSERT_TRUE(nb.Fit(train, &rng).ok());
  auto pred = nb.Predict(test.x);
  std::vector<int> pi(pred.begin(), pred.end());
  EXPECT_GT(Accuracy(test.LabelsAsInt(), pi), 0.9);
}

TEST(NaiveBayesTest, ProbaRowsAreDistributions) {
  MlDataset train = Blobs(150, 19);
  GaussianNaiveBayes nb;
  Rng rng(20);
  ASSERT_TRUE(nb.Fit(train, &rng).ok());
  for (const auto& row : nb.PredictProba(train.x)) {
    double s = 0;
    for (double p : row) {
      EXPECT_GE(p, 0.0);
      s += p;
    }
    EXPECT_NEAR(s, 1.0, 1e-9);
  }
}

TEST(NaiveBayesTest, HandlesConstantFeature) {
  MlDataset train = Blobs(100, 21);
  for (size_t i = 0; i < train.num_rows(); ++i) train.x.At(i, 1) = 2.0;
  GaussianNaiveBayes nb;
  Rng rng(22);
  EXPECT_TRUE(nb.Fit(train, &rng).ok());
}

// ------------------------------------------------------------ NSGA2-MODis

TEST(Nsga2ModisTest, ProducesFeasibleFront) {
  auto bench = MakeTabularBench(BenchTaskId::kHouse, 0.4);
  ASSERT_TRUE(bench.ok());
  auto universe = SearchUniverse::Build(bench->universal,
                                        bench->universe_options);
  ASSERT_TRUE(universe.ok());
  auto evaluator = bench->MakeEvaluator();
  ExactOracle oracle(evaluator.get());

  Nsga2Options opts;
  opts.population = 12;
  opts.generations = 3;
  opts.max_evaluations = 60;
  auto result = RunNsga2Modis(*universe, &oracle, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->evaluations, 60u);
  ASSERT_FALSE(result->skyline.empty());
  const auto& layout = universe->layout();
  for (const auto& e : result->skyline) {
    // Protected attributes stay on.
    for (size_t a = 0; a < layout.num_attributes(); ++a) {
      if (!layout.attr_flippable[a]) {
        EXPECT_TRUE(e.state.Get(a));
      }
    }
    EXPECT_GT(e.rows, 0u);
  }
}

// ---------------------------------------------------------- Running graph

TEST(RunningGraphTest, ReconstructsSingleFlipEdges) {
  TestRecordStore store;
  Evaluation ev;
  ev.normalized = {0.5};
  ev.raw = {0.5};
  store.Add("111", {1, 1, 1}, ev);
  store.Add("110", {1, 1, 0}, ev);
  store.Add("100", {1, 0, 0}, ev);
  store.Add("001", {0, 0, 1}, ev);  // Distance 2 from "111" and "100".

  RunningGraph graph = ReconstructRunningGraph(store);
  EXPECT_EQ(graph.nodes.size(), 4u);
  // Edges: 111->110, 110->100; "001" connects to none... except "011"? Not
  // present; and "101"? Not present. Distance("001","101")... not stored.
  ASSERT_EQ(graph.transitions.size(), 2u);
  for (const auto& t : graph.transitions) {
    EXPECT_GT(graph.nodes[t.from].popcount, graph.nodes[t.to].popcount);
  }
}

TEST(RunningGraphTest, DotOutputWellFormed) {
  TestRecordStore store;
  Evaluation ev;
  ev.normalized = {0.25};
  ev.raw = {0.25};
  store.Add("11", {1, 1}, ev);
  store.Add("10", {1, 0}, ev);
  RunningGraph graph = ReconstructRunningGraph(store);
  const std::string dot = RunningGraphToDot(graph, {"10"});
  EXPECT_NE(dot.find("digraph running_graph"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(dot.find("lightblue"), std::string::npos);  // Skyline marked.
  EXPECT_EQ(dot.back(), '\n');
}

TEST(RunningGraphTest, EngineRunYieldsConnectedLevels) {
  auto bench = MakeTabularBench(BenchTaskId::kHouse, 0.4);
  ASSERT_TRUE(bench.ok());
  auto universe = SearchUniverse::Build(bench->universal,
                                        bench->universe_options);
  ASSERT_TRUE(universe.ok());
  auto evaluator = bench->MakeEvaluator();
  ExactOracle oracle(evaluator.get());
  ModisConfig cfg;
  cfg.epsilon = 0.25;
  cfg.max_states = 50;
  cfg.max_level = 2;
  auto run = RunApxModis(*universe, &oracle, cfg);
  ASSERT_TRUE(run.ok());
  RunningGraph graph = ReconstructRunningGraph(oracle.store());
  EXPECT_EQ(graph.nodes.size(), oracle.store().size());
  // Every level-1 valuated state is one flip from the universal state, so
  // at least (nodes - 1) edges exist at small levels.
  EXPECT_GE(graph.transitions.size(), graph.nodes.size() - 1);
}

}  // namespace
}  // namespace modis
