/// Cross-cutting property sweeps: every (task, algorithm, ε) combination
/// must uphold the engine's invariants. Uses a wall-clock-free measure set
/// so runs are bit-deterministic and comparable across budgets.

#include <gtest/gtest.h>

#include "core/algorithms.h"
#include "datagen/tasks.h"
#include "ml/random_forest.h"
#include "moo/pareto.h"

namespace modis {
namespace {

/// A deterministic task: house lake, RF classifier, measures {f1, acc}
/// (no training time — wall-clock jitter would break run-to-run equality).
struct DeterministicFixture {
  TabularBench bench;
  SearchUniverse universe;

  static DeterministicFixture Make(uint64_t seed_offset = 0) {
    auto bench = MakeTabularBench(BenchTaskId::kHouse, 0.4, 0, seed_offset);
    EXPECT_TRUE(bench.ok());
    bench->task.measures = {MeasureSpec::Maximize("f1"),
                            MeasureSpec::Maximize("acc")};
    auto uni =
        SearchUniverse::Build(bench->universal, bench->universe_options);
    EXPECT_TRUE(uni.ok());
    return {std::move(bench).value(), std::move(uni).value()};
  }
};

using AlgoFn = Result<ModisResult> (*)(const SearchUniverse&,
                                       PerformanceOracle*, ModisConfig);

struct AlgoCase {
  const char* name;
  AlgoFn fn;
};

class AlgorithmPropertyTest : public ::testing::TestWithParam<AlgoCase> {};

TEST_P(AlgorithmPropertyTest, InvariantsHold) {
  DeterministicFixture f = DeterministicFixture::Make();
  auto evaluator = f.bench.MakeEvaluator();
  ExactOracle oracle(evaluator.get());
  ModisConfig cfg;
  cfg.epsilon = 0.2;
  cfg.max_states = 90;
  cfg.max_level = 3;
  auto result = GetParam().fn(f.universe, &oracle, cfg);
  ASSERT_TRUE(result.ok()) << GetParam().name;
  ASSERT_FALSE(result->skyline.empty()) << GetParam().name;
  EXPECT_LE(result->valuated_states, cfg.max_states);

  const auto upper = UpperBounds(oracle.measures());
  for (const auto& e : result->skyline) {
    // (1) Mutually non-dominated.
    for (const auto& other : result->skyline) {
      if (&e != &other) {
        EXPECT_FALSE(Dominates(other.eval.normalized, e.eval.normalized));
      }
    }
    // (2) Within the user-defined tolerances.
    for (size_t j = 0; j < upper.size(); ++j) {
      EXPECT_LE(e.eval.normalized[j], upper[j] + 1e-9);
    }
    // (3) Bookkeeping consistent with materialization.
    Table dataset = f.universe.Materialize(e.state);
    EXPECT_EQ(dataset.num_rows(), e.rows);
    EXPECT_EQ(dataset.num_cols(), e.cols);
    // (4) Level never exceeds maxl.
    EXPECT_LE(e.level, cfg.max_level);
  }
}

TEST_P(AlgorithmPropertyTest, DeterministicAcrossRuns) {
  DeterministicFixture f = DeterministicFixture::Make();
  ModisConfig cfg;
  cfg.epsilon = 0.2;
  cfg.max_states = 70;
  cfg.max_level = 3;

  auto run = [&]() {
    auto evaluator = f.bench.MakeEvaluator();
    ExactOracle oracle(evaluator.get());
    auto result = GetParam().fn(f.universe, &oracle, cfg);
    EXPECT_TRUE(result.ok());
    std::vector<std::string> sigs;
    for (const auto& e : result->skyline) {
      sigs.push_back(e.state.Signature());
    }
    std::sort(sigs.begin(), sigs.end());
    return sigs;
  };
  EXPECT_EQ(run(), run()) << GetParam().name;
}

TEST_P(AlgorithmPropertyTest, BudgetMonotonicityOfBestMeasure) {
  DeterministicFixture f = DeterministicFixture::Make();
  auto best_f1 = [&](size_t budget) {
    auto evaluator = f.bench.MakeEvaluator();
    ExactOracle oracle(evaluator.get());
    ModisConfig cfg;
    cfg.epsilon = 0.2;
    cfg.max_states = budget;
    cfg.max_level = 3;
    auto result = GetParam().fn(f.universe, &oracle, cfg);
    EXPECT_TRUE(result.ok());
    double best = 1.0;  // Normalized-minimized: smaller is better.
    for (const auto& e : result->skyline) {
      best = std::min(best, e.eval.normalized[0]);
    }
    return best;
  };
  // More budget explores a superset of states (same deterministic order),
  // so the best f1 must not regress. DivMODis trades optimality for
  // diversity, so it is exempt (the paper observes the same, Exp-2).
  if (std::string(GetParam().name) == "DivMODis") return;
  EXPECT_LE(best_f1(120), best_f1(50) + 1e-9) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, AlgorithmPropertyTest,
    ::testing::Values(AlgoCase{"ApxMODis", &RunApxModis},
                      AlgoCase{"NOBiMODis", &RunNoBiModis},
                      AlgoCase{"BiMODis", &RunBiModis},
                      AlgoCase{"DivMODis", &RunDivModis}),
    [](const ::testing::TestParamInfo<AlgoCase>& info) {
      return info.param.name;
    });

class EpsilonPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(EpsilonPropertyTest, SkylineCoversValuatedInBoundsStates) {
  // The Lemma-2 ε-cover, on the deterministic measure set (no wall-clock
  // noise, so the exact guarantee is assertable with the exact epsilon).
  DeterministicFixture f = DeterministicFixture::Make();
  auto evaluator = f.bench.MakeEvaluator();
  ExactOracle oracle(evaluator.get());
  ModisConfig cfg;
  cfg.epsilon = GetParam();
  cfg.max_states = 80;
  cfg.max_level = 3;
  auto result = RunApxModis(f.universe, &oracle, cfg);
  ASSERT_TRUE(result.ok());

  std::vector<PerfVector> kept;
  for (const auto& e : result->skyline) kept.push_back(e.eval.normalized);
  const auto upper = UpperBounds(oracle.measures());
  for (const auto& record : oracle.store().records()) {
    bool in_bounds = true;
    for (size_t j = 0; j < upper.size(); ++j) {
      if (record.eval.normalized[j] > upper[j] + 1e-12) in_bounds = false;
    }
    if (!in_bounds) continue;
    bool covered = false;
    for (const auto& k : kept) {
      if (EpsilonDominates(k, record.eval.normalized, cfg.epsilon + 1e-9)) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << "eps=" << GetParam() << " state " << record.key;
  }
}

INSTANTIATE_TEST_SUITE_P(Epsilons, EpsilonPropertyTest,
                         ::testing::Values(0.05, 0.1, 0.2, 0.4));

class SeedPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeedPropertyTest, PipelineRobustAcrossLakes) {
  // Different generator seeds produce different lakes; the pipeline must
  // stay healthy (non-empty in-bounds skyline) on each.
  DeterministicFixture f = DeterministicFixture::Make(GetParam());
  auto evaluator = f.bench.MakeEvaluator();
  ExactOracle oracle(evaluator.get());
  ModisConfig cfg;
  cfg.epsilon = 0.2;
  cfg.max_states = 60;
  cfg.max_level = 2;
  auto result = RunNoBiModis(f.universe, &oracle, cfg);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->skyline.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedPropertyTest,
                         ::testing::Values(1000, 2000, 3000, 4000, 5000));

}  // namespace
}  // namespace modis
