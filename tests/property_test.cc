/// Cross-cutting property sweeps: every (task, algorithm, ε) combination
/// must uphold the engine's invariants. Uses a wall-clock-free measure set
/// so runs are bit-deterministic and comparable across budgets.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "core/algorithms.h"
#include "datagen/tasks.h"
#include "ml/random_forest.h"
#include "moo/pareto.h"

namespace modis {
namespace {

/// A deterministic task: house lake, RF classifier, measures {f1, acc}
/// (no training time — wall-clock jitter would break run-to-run equality).
struct DeterministicFixture {
  TabularBench bench;
  SearchUniverse universe;

  static DeterministicFixture Make(uint64_t seed_offset = 0) {
    auto bench = MakeTabularBench(BenchTaskId::kHouse, 0.4, 0, seed_offset);
    EXPECT_TRUE(bench.ok());
    bench->task.measures = {MeasureSpec::Maximize("f1"),
                            MeasureSpec::Maximize("acc")};
    auto uni =
        SearchUniverse::Build(bench->universal, bench->universe_options);
    EXPECT_TRUE(uni.ok());
    return {std::move(bench).value(), std::move(uni).value()};
  }
};

using AlgoFn = Result<ModisResult> (*)(const SearchUniverse&,
                                       PerformanceOracle*, ModisConfig);

struct AlgoCase {
  const char* name;
  AlgoFn fn;
};

class AlgorithmPropertyTest : public ::testing::TestWithParam<AlgoCase> {};

TEST_P(AlgorithmPropertyTest, InvariantsHold) {
  DeterministicFixture f = DeterministicFixture::Make();
  auto evaluator = f.bench.MakeEvaluator();
  ExactOracle oracle(evaluator.get());
  ModisConfig cfg;
  cfg.epsilon = 0.2;
  cfg.max_states = 90;
  cfg.max_level = 3;
  auto result = GetParam().fn(f.universe, &oracle, cfg);
  ASSERT_TRUE(result.ok()) << GetParam().name;
  ASSERT_FALSE(result->skyline.empty()) << GetParam().name;
  EXPECT_LE(result->valuated_states, cfg.max_states);

  const auto upper = UpperBounds(oracle.measures());
  for (const auto& e : result->skyline) {
    // (1) Mutually non-dominated.
    for (const auto& other : result->skyline) {
      if (&e != &other) {
        EXPECT_FALSE(Dominates(other.eval.normalized, e.eval.normalized));
      }
    }
    // (2) Within the user-defined tolerances.
    for (size_t j = 0; j < upper.size(); ++j) {
      EXPECT_LE(e.eval.normalized[j], upper[j] + 1e-9);
    }
    // (3) Bookkeeping consistent with materialization.
    Table dataset = f.universe.Materialize(e.state);
    EXPECT_EQ(dataset.num_rows(), e.rows);
    EXPECT_EQ(dataset.num_cols(), e.cols);
    // (4) Level never exceeds maxl.
    EXPECT_LE(e.level, cfg.max_level);
  }
}

TEST_P(AlgorithmPropertyTest, DeterministicAcrossRuns) {
  DeterministicFixture f = DeterministicFixture::Make();
  ModisConfig cfg;
  cfg.epsilon = 0.2;
  cfg.max_states = 70;
  cfg.max_level = 3;

  auto run = [&]() {
    auto evaluator = f.bench.MakeEvaluator();
    ExactOracle oracle(evaluator.get());
    auto result = GetParam().fn(f.universe, &oracle, cfg);
    EXPECT_TRUE(result.ok());
    std::vector<std::string> sigs;
    for (const auto& e : result->skyline) {
      sigs.push_back(e.state.Signature());
    }
    std::sort(sigs.begin(), sigs.end());
    return sigs;
  };
  EXPECT_EQ(run(), run()) << GetParam().name;
}

TEST_P(AlgorithmPropertyTest, BudgetMonotonicityOfBestMeasure) {
  DeterministicFixture f = DeterministicFixture::Make();
  auto best_f1 = [&](size_t budget) {
    auto evaluator = f.bench.MakeEvaluator();
    ExactOracle oracle(evaluator.get());
    ModisConfig cfg;
    cfg.epsilon = 0.2;
    cfg.max_states = budget;
    cfg.max_level = 3;
    auto result = GetParam().fn(f.universe, &oracle, cfg);
    EXPECT_TRUE(result.ok());
    double best = 1.0;  // Normalized-minimized: smaller is better.
    for (const auto& e : result->skyline) {
      best = std::min(best, e.eval.normalized[0]);
    }
    return best;
  };
  // More budget explores a superset of states (same deterministic order),
  // so the best f1 must not regress. DivMODis trades optimality for
  // diversity, so it is exempt (the paper observes the same, Exp-2).
  if (std::string(GetParam().name) == "DivMODis") return;
  EXPECT_LE(best_f1(120), best_f1(50) + 1e-9) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, AlgorithmPropertyTest,
    ::testing::Values(AlgoCase{"ApxMODis", &RunApxModis},
                      AlgoCase{"NOBiMODis", &RunNoBiModis},
                      AlgoCase{"BiMODis", &RunBiModis},
                      AlgoCase{"DivMODis", &RunDivModis}),
    [](const ::testing::TestParamInfo<AlgoCase>& info) {
      return info.param.name;
    });

class EpsilonPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(EpsilonPropertyTest, SkylineCoversValuatedInBoundsStates) {
  // The Lemma-2 ε-cover, on the deterministic measure set (no wall-clock
  // noise, so the exact guarantee is assertable with the exact epsilon).
  DeterministicFixture f = DeterministicFixture::Make();
  auto evaluator = f.bench.MakeEvaluator();
  ExactOracle oracle(evaluator.get());
  ModisConfig cfg;
  cfg.epsilon = GetParam();
  cfg.max_states = 80;
  cfg.max_level = 3;
  auto result = RunApxModis(f.universe, &oracle, cfg);
  ASSERT_TRUE(result.ok());

  std::vector<PerfVector> kept;
  for (const auto& e : result->skyline) kept.push_back(e.eval.normalized);
  const auto upper = UpperBounds(oracle.measures());
  for (const auto& record : oracle.store().records()) {
    bool in_bounds = true;
    for (size_t j = 0; j < upper.size(); ++j) {
      if (record.eval.normalized[j] > upper[j] + 1e-12) in_bounds = false;
    }
    if (!in_bounds) continue;
    bool covered = false;
    for (const auto& k : kept) {
      if (EpsilonDominates(k, record.eval.normalized, cfg.epsilon + 1e-9)) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << "eps=" << GetParam() << " state " << record.key;
  }
}

INSTANTIATE_TEST_SUITE_P(Epsilons, EpsilonPropertyTest,
                         ::testing::Values(0.05, 0.1, 0.2, 0.4));

class SeedPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeedPropertyTest, PipelineRobustAcrossLakes) {
  // Different generator seeds produce different lakes; the pipeline must
  // stay healthy (non-empty in-bounds skyline) on each.
  DeterministicFixture f = DeterministicFixture::Make(GetParam());
  auto evaluator = f.bench.MakeEvaluator();
  ExactOracle oracle(evaluator.get());
  ModisConfig cfg;
  cfg.epsilon = 0.2;
  cfg.max_states = 60;
  cfg.max_level = 2;
  auto result = RunNoBiModis(f.universe, &oracle, cfg);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->skyline.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedPropertyTest,
                         ::testing::Values(1000, 2000, 3000, 4000, 5000));

/// ---- Persistent-cache identity across storage engines ----
///
/// The cache contract — the skyline is identical with the cache off,
/// cold, or warm — must hold whatever engine sits under the cache file.
/// These sweeps pin it for the paged engine across page sizes with a
/// deliberately tiny buffer-pool budget (so lookups churn through
/// eviction), and through a one-shot v1-log migration.

std::string PropCachePath(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  std::remove((path + ".gc").c_str());
  std::remove((path + ".compact").c_str());
  std::remove((path + ".migrate").c_str());
  return path;
}

std::string FileMagic(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  char magic[8] = {0};
  in.read(magic, sizeof(magic));
  return std::string(magic, static_cast<size_t>(std::max<std::streamsize>(
                                0, in.gcount())));
}

/// Byte-identity, not tolerance: a served record replays exactly what the
/// training that produced it returned, so every double must match with ==.
void ExpectByteIdenticalSkyline(ModisResult a, ModisResult b) {
  EXPECT_EQ(a.valuated_states, b.valuated_states);
  EXPECT_EQ(a.generated_states, b.generated_states);
  EXPECT_EQ(a.pruned_states, b.pruned_states);
  ASSERT_EQ(a.skyline.size(), b.skyline.size());
  ASSERT_FALSE(a.skyline.empty());
  auto by_signature = [](const SkylineEntry& x, const SkylineEntry& y) {
    return x.state.Signature() < y.state.Signature();
  };
  std::sort(a.skyline.begin(), a.skyline.end(), by_signature);
  std::sort(b.skyline.begin(), b.skyline.end(), by_signature);
  for (size_t i = 0; i < a.skyline.size(); ++i) {
    const SkylineEntry& x = a.skyline[i];
    const SkylineEntry& y = b.skyline[i];
    EXPECT_EQ(x.state.Signature(), y.state.Signature());
    EXPECT_EQ(x.level, y.level);
    ASSERT_EQ(x.eval.normalized.size(), y.eval.normalized.size());
    for (size_t j = 0; j < x.eval.normalized.size(); ++j) {
      EXPECT_EQ(x.eval.normalized[j], y.eval.normalized[j]);
      EXPECT_EQ(x.eval.raw[j], y.eval.raw[j]);
    }
  }
}

ModisResult RunCached(DeterministicFixture& f, const std::string& cache_path,
                      uint32_t page_size, size_t buffer_frames) {
  auto evaluator = f.bench.MakeEvaluator();
  ExactOracle oracle(evaluator.get());
  ModisConfig cfg;
  cfg.epsilon = 0.2;
  cfg.max_states = 70;
  cfg.max_level = 3;
  cfg.record_cache_path = cache_path;
  cfg.record_cache_page_size = page_size;
  cfg.record_cache_buffer_frames = buffer_frames;
  auto result = RunBiModis(f.universe, &oracle, cfg);
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

class PagedCachePropertyTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(PagedCachePropertyTest, OffColdWarmSkylinesAreByteIdentical) {
  const uint32_t page_size = GetParam();
  DeterministicFixture f = DeterministicFixture::Make();
  const std::string path =
      PropCachePath("prop_paged_" + std::to_string(page_size) + ".rlog");

  // Four frames is far below the page count a full run touches: every
  // warm lookup has to page in through LRU eviction, never a full load.
  ModisResult off = RunCached(f, "", page_size, 4);
  ModisResult cold = RunCached(f, path, page_size, 4);
  ModisResult warm = RunCached(f, path, page_size, 4);

  EXPECT_FALSE(off.record_cache_active);
  ASSERT_TRUE(cold.record_cache_active);
  ASSERT_TRUE(warm.record_cache_active);
  // page_size 0 = the v1 record log; nonzero = the paged engine.
  EXPECT_EQ(FileMagic(path), page_size == 0 ? "MODISRLG" : "MODISPG2");

  // Cold: cache engaged but empty — trains exactly what the off run does.
  EXPECT_EQ(cold.oracle_stats.persistent_hits, 0u);
  EXPECT_GT(cold.record_cache_stats.appended, 0u);
  EXPECT_EQ(cold.oracle_stats.exact_evals, off.oracle_stats.exact_evals);

  // Warm: every valuation replays from the paged file — zero trainings.
  EXPECT_EQ(warm.oracle_stats.exact_evals, 0u);
  EXPECT_EQ(warm.oracle_stats.persistent_hits, cold.oracle_stats.exact_evals);

  ExpectByteIdenticalSkyline(off, std::move(cold));
  ExpectByteIdenticalSkyline(std::move(off), std::move(warm));
}

INSTANTIATE_TEST_SUITE_P(PageSizes, PagedCachePropertyTest,
                         ::testing::Values(0u, 4096u, 16384u),
                         [](const ::testing::TestParamInfo<uint32_t>& info) {
                           return "Page" + std::to_string(info.param);
                         });

TEST(PagedCacheMigrationPropertyTest, WarmRunThroughMigratedV1Log) {
  DeterministicFixture f = DeterministicFixture::Make();
  const std::string path = PropCachePath("prop_migrated.rlog");

  ModisResult off = RunCached(f, "", 0, 0);
  // Cold run with page_size 0 seeds a v1 append-only log.
  ModisResult cold = RunCached(f, path, 0, 0);
  ASSERT_EQ(FileMagic(path), "MODISRLG");

  // The warm run opts into the paged engine: the read-write open migrates
  // the v1 log once, then serves every valuation from the paged file.
  ModisResult warm = RunCached(f, path, 4096, 4);
  EXPECT_EQ(FileMagic(path), "MODISPG2");
  ASSERT_TRUE(warm.record_cache_active);
  EXPECT_EQ(warm.oracle_stats.exact_evals, 0u);
  EXPECT_EQ(warm.oracle_stats.persistent_hits, cold.oracle_stats.exact_evals);

  ExpectByteIdenticalSkyline(off, std::move(cold));
  ExpectByteIdenticalSkyline(std::move(off), std::move(warm));
}

}  // namespace
}  // namespace modis
