#include <gtest/gtest.h>

#include "datagen/tasks.h"
#include "estimator/link_evaluator.h"
#include "estimator/measure.h"
#include "estimator/oracle.h"
#include "estimator/supervised_evaluator.h"
#include "ml/random_forest.h"

namespace modis {
namespace {

// ---------------------------------------------------------------- Measure

TEST(MeasureTest, MaximizeInverts) {
  MeasureSpec m = MeasureSpec::Maximize("acc");
  EXPECT_NEAR(m.Normalize(0.9), 0.1, 1e-12);
  EXPECT_NEAR(m.Normalize(1.0), m.lower, 1e-12);  // Floored at p_l.
  EXPECT_NEAR(m.Normalize(0.0), 1.0, 1e-12);
}

TEST(MeasureTest, MinimizeScales) {
  MeasureSpec m = MeasureSpec::Minimize("train_time", 10.0);
  EXPECT_NEAR(m.Normalize(5.0), 0.5, 1e-12);
  EXPECT_NEAR(m.Normalize(100.0), 1.0, 1e-12);  // Clamped at 1.
  EXPECT_GE(m.Normalize(0.0), m.lower);          // Stays in (0, 1].
}

TEST(MeasureTest, BoundsVectors) {
  std::vector<MeasureSpec> specs{MeasureSpec::Maximize("a", 0.01, 0.5),
                                 MeasureSpec::Minimize("b", 2.0, 0.02, 0.8)};
  EXPECT_EQ(LowerBounds(specs), (std::vector<double>{0.01, 0.02}));
  EXPECT_EQ(UpperBounds(specs), (std::vector<double>{0.5, 0.8}));
}

// ------------------------------------------------------ SupervisedEvaluator

TabularBench SmallHouse() {
  auto bench = MakeTabularBench(BenchTaskId::kHouse, 0.4);
  EXPECT_TRUE(bench.ok());
  return std::move(bench).value();
}

TEST(SupervisedEvaluatorTest, EvaluatesUniversalTable) {
  TabularBench bench = SmallHouse();
  auto evaluator = bench.MakeEvaluator();
  auto eval = evaluator->Evaluate(bench.universal);
  ASSERT_TRUE(eval.ok()) << eval.status().ToString();
  ASSERT_EQ(eval->raw.size(), bench.task.measures.size());
  ASSERT_EQ(eval->normalized.size(), bench.task.measures.size());
  // F1 and accuracy should be decent on the planted-signal lake.
  EXPECT_GT(eval->raw[0], 0.5);  // f1
  EXPECT_GT(eval->raw[1], 0.5);  // acc
  for (double v : eval->normalized) {
    EXPECT_GT(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(SupervisedEvaluatorTest, DeterministicAcrossCalls) {
  TabularBench bench = SmallHouse();
  auto evaluator = bench.MakeEvaluator();
  auto a = evaluator->Evaluate(bench.universal);
  auto b = evaluator->Evaluate(bench.universal);
  ASSERT_TRUE(a.ok() && b.ok());
  // Wall-clock (train_time) differs run to run; all other measures must be
  // bit-identical.
  for (size_t i = 0; i < a->raw.size(); ++i) {
    if (bench.task.measures[i].name == "train_time") continue;
    EXPECT_DOUBLE_EQ(a->raw[i], b->raw[i]) << bench.task.measures[i].name;
  }
}

TEST(SupervisedEvaluatorTest, FailsOnTinyDataset) {
  TabularBench bench = SmallHouse();
  auto evaluator = bench.MakeEvaluator();
  Table tiny = bench.universal.SelectRows({0, 1, 2});
  EXPECT_FALSE(evaluator->Evaluate(tiny).ok());
}

TEST(SupervisedEvaluatorTest, FailsWithoutFeatures) {
  TabularBench bench = SmallHouse();
  auto evaluator = bench.MakeEvaluator();
  auto only_target = bench.universal.SelectColumnsByName(
      {bench.task.target, bench.lake.key()});
  ASSERT_TRUE(only_target.ok());
  EXPECT_FALSE(evaluator->Evaluate(only_target.value()).ok());
}

TEST(SupervisedEvaluatorTest, UnknownMeasureRejected) {
  TabularBench bench = SmallHouse();
  SupervisedTask task = bench.task;
  task.measures = {MeasureSpec::Maximize("bogus")};
  SupervisedEvaluator evaluator(task, bench.model->Clone());
  EXPECT_FALSE(evaluator.Evaluate(bench.universal).ok());
}

// ---------------------------------------------------------------- Oracles

TEST(ExactOracleTest, CachesBySignature) {
  TabularBench bench = SmallHouse();
  auto evaluator = bench.MakeEvaluator();
  ExactOracle oracle(evaluator.get());
  int materializations = 0;
  auto provider = [&]() {
    ++materializations;
    return bench.universal;
  };
  auto a = oracle.Valuate("sig1", {1.0, 0.5}, provider);
  auto b = oracle.Valuate("sig1", {1.0, 0.5}, provider);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(materializations, 1);
  EXPECT_EQ(oracle.stats().exact_evals, 1u);
  EXPECT_EQ(oracle.stats().cache_hits, 1u);
  EXPECT_EQ(a->normalized, b->normalized);
  EXPECT_EQ(oracle.store().size(), 1u);
}

TEST(ExactOracleTest, FailedEvalNotCached) {
  TabularBench bench = SmallHouse();
  auto evaluator = bench.MakeEvaluator();
  ExactOracle oracle(evaluator.get());
  Table tiny = bench.universal.SelectRows({0});
  auto r = oracle.Valuate("bad", {0.0, 0.0}, [&]() { return tiny; });
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(oracle.stats().failed_evals, 1u);
  EXPECT_EQ(oracle.store().size(), 0u);
}

// ------------------------------------------------------------ Batch API

/// Deterministic stub: evaluates to a pure function of the row count and
/// fails on empty tables, so batch-policy tests control exactly which
/// trainings succeed.
class StubEvaluator : public TaskEvaluator {
 public:
  StubEvaluator()
      : measures_{MeasureSpec::Minimize("m0", 1.0),
                  MeasureSpec::Minimize("m1", 1.0)} {}

  const std::vector<MeasureSpec>& measures() const override {
    return measures_;
  }
  Result<Evaluation> Evaluate(const Table& dataset) override {
    if (dataset.num_rows() == 0) {
      return Status::FailedPrecondition("stub: empty dataset");
    }
    const double v = 1.0 / (1.0 + static_cast<double>(dataset.num_rows()));
    Evaluation e;
    e.raw = {v, v / 2.0};
    e.normalized = {v, v / 2.0};
    return e;
  }

 private:
  std::vector<MeasureSpec> measures_;
};

Table StubTable(size_t rows) {
  Schema schema;
  MODIS_CHECK_OK(schema.AddField({"x", ColumnType::kNumeric}));
  Table t(schema);
  for (size_t r = 0; r < rows; ++r) {
    MODIS_CHECK_OK(t.AppendRow({Value(static_cast<double>(r))}));
  }
  return t;
}

ValuationRequest StubRequest(const std::string& key, size_t rows,
                             double feature) {
  ValuationRequest req;
  req.key = key;
  req.features = {feature, 1.0};
  req.materialize = [rows]() {
    auto m = std::make_shared<Materialization>();
    m->table = StubTable(rows);
    return MaterializationPtr(m);
  };
  return req;
}

TEST(ExactOracleBatchTest, PlansCacheHitsAndCommitsInOrder) {
  StubEvaluator evaluator;
  ExactOracle oracle(&evaluator);
  // Pre-valuate "a" so the batch sees it as cached.
  auto warm = oracle.Valuate("a", {0.0, 1.0},
                             []() { return StubTable(4); });
  ASSERT_TRUE(warm.ok());

  std::vector<ValuationRequest> requests;
  requests.push_back(StubRequest("a", 4, 0.0));
  requests.push_back(StubRequest("b", 9, 1.0));
  requests.push_back(StubRequest("c", 0, 2.0));  // Fails to train.
  BatchPlan plan = oracle.PrepareBatch(std::move(requests));
  ASSERT_EQ(plan.modes.size(), 3u);
  EXPECT_EQ(plan.modes[0], BatchPlan::Mode::kCached);
  EXPECT_EQ(plan.modes[1], BatchPlan::Mode::kExact);
  EXPECT_EQ(plan.modes[2], BatchPlan::Mode::kExact);
  EXPECT_EQ(plan.exact_count, 2u);

  auto results = oracle.ValuateBatch(std::move(plan), nullptr);
  ASSERT_EQ(results.size(), 3u);
  ASSERT_TRUE(results[0].ok());
  EXPECT_EQ(results[0]->normalized, warm->normalized);
  ASSERT_TRUE(results[1].ok());
  EXPECT_NEAR(results[1]->normalized[0], 0.1, 1e-12);
  EXPECT_FALSE(results[2].ok());  // Failed training surfaces per item.
  EXPECT_EQ(oracle.stats().cache_hits, 1u);
  EXPECT_EQ(oracle.stats().exact_evals, 2u);  // warm + "b".
  EXPECT_EQ(oracle.stats().failed_evals, 1u);
  EXPECT_EQ(oracle.store().size(), 2u);
}

TEST(MoGbmOracleBatchTest, BootstrapShortfallFallsBackToExact) {
  // The plan projects the bootstrap to finish within the batch, but one
  // exact training fails, leaving the surrogate untrained when the
  // batch's surrogate predictions come due. Those requests must fall
  // back to exact valuation (the serial path's guarantee) instead of
  // being dropped as failures.
  StubEvaluator evaluator;
  SurrogateOptions opts;
  opts.bootstrap_budget = 4;
  opts.exact_fraction = 0.0;  // Everything after bootstrap plans surrogate.
  MoGbmOracle oracle(&evaluator, opts);

  std::vector<ValuationRequest> requests;
  for (size_t i = 0; i < 8; ++i) {
    // Request #2 materializes an empty table, so its training fails.
    requests.push_back(StubRequest("k" + std::to_string(i),
                                   i == 2 ? 0 : 5 + i,
                                   static_cast<double>(i)));
  }
  BatchPlan plan = oracle.PrepareBatch(std::move(requests));
  size_t exact_planned = 0;
  for (auto m : plan.modes) {
    if (m == BatchPlan::Mode::kExact) ++exact_planned;
  }
  EXPECT_EQ(exact_planned, 4u);  // The projected bootstrap.

  auto results = oracle.ValuateBatch(std::move(plan), nullptr);
  ASSERT_EQ(results.size(), 8u);
  for (size_t i = 0; i < results.size(); ++i) {
    if (i == 2) {
      EXPECT_FALSE(results[i].ok()) << i;
    } else {
      EXPECT_TRUE(results[i].ok()) << i << ": "
                                   << results[i].status().ToString();
    }
  }
  // 3 bootstrap successes + at least the first fallback ran exactly; the
  // retrain after the fallback may hand the remaining requests to the
  // surrogate, but none may be dropped.
  EXPECT_GE(oracle.stats().exact_evals, 4u);
  EXPECT_EQ(oracle.stats().failed_evals, 1u);
  EXPECT_EQ(oracle.stats().exact_evals + oracle.stats().surrogate_evals,
            7u);
}

TEST(MoGbmOracleTest, BootstrapsExactThenPredicts) {
  TabularBench bench = SmallHouse();
  auto evaluator = bench.MakeEvaluator();
  SurrogateOptions opts;
  opts.bootstrap_budget = 6;
  opts.exact_fraction = 0.0;
  MoGbmOracle oracle(evaluator.get(), opts);

  auto uni = SearchUniverse::Build(bench.universal, bench.universe_options);
  ASSERT_TRUE(uni.ok());

  // Valuate a series of distinct single-flip states.
  StateBitmap full = uni->FullBitmap();
  size_t flips = 0;
  for (size_t u = 0; u < uni->layout().num_units() && flips < 12; ++u) {
    if (uni->layout().IsAttributeUnit(u) && !uni->layout().attr_flippable[u]) {
      continue;
    }
    StateBitmap s = full.WithFlipped(u);
    auto r = oracle.Valuate(s.Signature(), uni->StateFeatures(s),
                            [&]() { return uni->Materialize(s); });
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ++flips;
  }
  EXPECT_GE(oracle.stats().exact_evals, 6u);
  EXPECT_GT(oracle.stats().surrogate_evals, 0u);
  // Surrogate predictions stay in normalized range.
  EXPECT_EQ(oracle.stats().exact_evals + oracle.stats().surrogate_evals,
            flips);
}

TEST(MoGbmOracleTest, SurrogateIsFastAfterBootstrap) {
  TabularBench bench = SmallHouse();
  auto evaluator = bench.MakeEvaluator();
  SurrogateOptions opts;
  opts.bootstrap_budget = 4;
  opts.exact_fraction = 0.0;
  MoGbmOracle oracle(evaluator.get(), opts);
  auto uni = SearchUniverse::Build(bench.universal, bench.universe_options);
  ASSERT_TRUE(uni.ok());
  StateBitmap full = uni->FullBitmap();
  int done = 0;
  for (size_t u = 0; u < uni->layout().num_units() && done < 20; ++u) {
    if (uni->layout().IsAttributeUnit(u) && !uni->layout().attr_flippable[u]) {
      continue;
    }
    StateBitmap s = full.WithFlipped(u);
    ASSERT_TRUE(oracle.Valuate(s.Signature(), uni->StateFeatures(s),
                               [&]() { return uni->Materialize(s); })
                    .ok());
    ++done;
  }
  const auto& st = oracle.stats();
  ASSERT_GT(st.surrogate_evals, 0u);
  // Per-call surrogate cost must be far below per-call exact cost.
  EXPECT_LT(st.surrogate_seconds / st.surrogate_evals,
            st.exact_seconds / st.exact_evals);
}

// ------------------------------------------------------------- LinkEvaluator

TEST(LinkEvaluatorTest, EvaluatesEdgeTable) {
  auto bench = MakeGraphBench(0.5);
  ASSERT_TRUE(bench.ok());
  auto evaluator = bench->MakeEvaluator();
  auto eval = evaluator->Evaluate(bench->lake.edge_table);
  ASSERT_TRUE(eval.ok()) << eval.status().ToString();
  EXPECT_EQ(eval->raw.size(), bench->task.measures.size());
  for (double v : eval->raw) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(LinkEvaluatorTest, FailsOnTooFewEdges) {
  auto bench = MakeGraphBench(0.5);
  ASSERT_TRUE(bench.ok());
  auto evaluator = bench->MakeEvaluator();
  Table tiny = bench->lake.edge_table.SelectRows({0, 1, 2});
  EXPECT_FALSE(evaluator->Evaluate(tiny).ok());
}

}  // namespace
}  // namespace modis
