#include <gtest/gtest.h>

#include <set>

#include "datagen/data_lake.h"
#include "datagen/graph_gen.h"
#include "datagen/tasks.h"

namespace modis {
namespace {

TEST(DataLakeTest, ShapesMatchSpec) {
  DataLakeSpec spec;
  spec.num_rows = 500;
  spec.num_tables = 4;
  spec.informative_per_table = 2;
  spec.noisy_per_table = 1;
  spec.redundant_per_table = 1;
  auto lake = GenerateDataLake(spec);
  ASSERT_TRUE(lake.ok());
  ASSERT_EQ(lake->tables.size(), 4u);
  // Base: key, segment, target.
  EXPECT_EQ(lake->tables[0].num_cols(), 3u);
  EXPECT_EQ(lake->tables[0].num_rows(), 500u);
  // Feature tables: key + 4 features.
  for (size_t t = 1; t < lake->tables.size(); ++t) {
    EXPECT_EQ(lake->tables[t].num_cols(), 5u);
    EXPECT_EQ(lake->tables[t].num_rows(), 500u);
    EXPECT_TRUE(lake->tables[t].schema().HasField("id"));
  }
}

TEST(DataLakeTest, DeterministicForSeed) {
  DataLakeSpec spec;
  spec.num_rows = 200;
  auto a = GenerateDataLake(spec);
  auto b = GenerateDataLake(spec);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t t = 0; t < a->tables.size(); ++t) {
    ASSERT_EQ(a->tables[t].num_rows(), b->tables[t].num_rows());
    for (size_t r = 0; r < a->tables[t].num_rows(); r += 17) {
      for (size_t c = 0; c < a->tables[t].num_cols(); ++c) {
        EXPECT_EQ(a->tables[t].At(r, c), b->tables[t].At(r, c));
      }
    }
  }
}

TEST(DataLakeTest, ClassificationTargetHasRequestedClasses) {
  DataLakeSpec spec;
  spec.num_rows = 400;
  spec.task = TaskKind::kClassification;
  spec.num_classes = 3;
  auto lake = GenerateDataLake(spec);
  ASSERT_TRUE(lake.ok());
  auto target = lake->tables[0].schema().FindField(spec.target);
  ASSERT_TRUE(target.has_value());
  std::set<int64_t> classes;
  for (const Value& v : lake->tables[0].column(*target)) {
    classes.insert(v.AsInt());
  }
  EXPECT_EQ(classes.size(), 3u);
}

TEST(DataLakeTest, CorruptSegmentsHaveNoisierTargets) {
  DataLakeSpec spec;
  spec.num_rows = 3000;
  spec.task = TaskKind::kRegression;
  spec.corrupt_noise = 3.0;
  auto lake = GenerateDataLake(spec);
  ASSERT_TRUE(lake.ok());
  const Table& base = lake->tables[0];
  const size_t seg = *base.schema().FindField("segment");
  const size_t tgt = *base.schema().FindField(spec.target);
  std::vector<double> corrupt, clean;
  for (size_t r = 0; r < base.num_rows(); ++r) {
    const std::string& s = base.At(r, seg).AsString();
    const double y = base.At(r, tgt).AsDouble();
    // Segments seg_0 / seg_1 are corrupted by default.
    if (s == "seg_0" || s == "seg_1") {
      corrupt.push_back(y);
    } else {
      clean.push_back(y);
    }
  }
  double vc = 0, vl = 0, mc = 0, ml = 0;
  for (double y : corrupt) mc += y;
  mc /= corrupt.size();
  for (double y : clean) ml += y;
  ml /= clean.size();
  for (double y : corrupt) vc += (y - mc) * (y - mc);
  vc /= corrupt.size();
  for (double y : clean) vl += (y - ml) * (y - ml);
  vl /= clean.size();
  EXPECT_GT(vc, 2.0 * vl);
}

TEST(DataLakeTest, RejectsDegenerateSpecs) {
  DataLakeSpec spec;
  spec.num_rows = 5;
  EXPECT_FALSE(GenerateDataLake(spec).ok());
  DataLakeSpec spec2;
  spec2.corrupt_segments = 9;
  spec2.num_segments = 5;
  EXPECT_FALSE(GenerateDataLake(spec2).ok());
}

TEST(DataLakeTest, UniversalTableJoinsEverything) {
  DataLakeSpec spec;
  spec.num_rows = 300;
  spec.num_tables = 3;
  auto lake = GenerateDataLake(spec);
  ASSERT_TRUE(lake.ok());
  auto uni = LakeUniversalTable(lake.value());
  ASSERT_TRUE(uni.ok());
  EXPECT_EQ(uni->num_rows(), 300u);  // Keys align 1:1.
  size_t expected_cols = lake->tables[0].num_cols();
  for (size_t t = 1; t < lake->tables.size(); ++t) {
    expected_cols += lake->tables[t].num_cols() - 1;  // Minus shared key.
  }
  EXPECT_EQ(uni->num_cols(), expected_cols);
}

TEST(GraphLakeTest, ShapesAndTestEdges) {
  GraphLakeSpec spec;
  spec.num_users = 20;
  spec.num_items = 40;
  auto lake = GenerateGraphLake(spec);
  ASSERT_TRUE(lake.ok());
  EXPECT_EQ(lake->test_edges.size(), 20u);
  for (const auto& edges : lake->test_edges) {
    EXPECT_LE(edges.size(),
              static_cast<size_t>(spec.test_edges_per_user));
    for (int item : edges) {
      EXPECT_GE(item, 0);
      EXPECT_LT(item, 40);
    }
  }
  EXPECT_EQ(lake->edge_table.num_cols(), 4u);
  EXPECT_GT(lake->edge_table.num_rows(), 0u);
}

TEST(GraphLakeTest, NoiseEdgesHaveLowAffinity) {
  auto lake = GenerateGraphLake({});
  ASSERT_TRUE(lake.ok());
  const Table& t = lake->edge_table;
  const size_t user = *t.schema().FindField("user");
  const size_t item = *t.schema().FindField("item");
  const size_t aff = *t.schema().FindField("affinity");
  for (size_t r = 0; r < t.num_rows(); ++r) {
    const int u = static_cast<int>(t.At(r, user).AsDouble());
    const int i = static_cast<int>(t.At(r, item).AsDouble());
    const bool same_comm = (u % 4) == (i % 4);
    if (same_comm) {
      EXPECT_GE(t.At(r, aff).AsDouble(), 0.7);
    } else {
      EXPECT_LT(t.At(r, aff).AsDouble(), 0.35);
    }
  }
}

TEST(GraphLakeTest, TestEdgesNotInTrainTable) {
  auto lake = GenerateGraphLake({});
  ASSERT_TRUE(lake.ok());
  const Table& t = lake->edge_table;
  const size_t user = *t.schema().FindField("user");
  const size_t item = *t.schema().FindField("item");
  std::set<std::pair<int, int>> train;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    train.insert({static_cast<int>(t.At(r, user).AsDouble()),
                  static_cast<int>(t.At(r, item).AsDouble())});
  }
  for (size_t u = 0; u < lake->test_edges.size(); ++u) {
    for (int i : lake->test_edges[u]) {
      EXPECT_EQ(train.count({static_cast<int>(u), i}), 0u);
    }
  }
}

TEST(TasksTest, AllTabularBenchesConstruct) {
  for (BenchTaskId id :
       {BenchTaskId::kMovie, BenchTaskId::kHouse, BenchTaskId::kAvocado,
        BenchTaskId::kMental, BenchTaskId::kXray, BenchTaskId::kFeaturePool}) {
    auto bench = MakeTabularBench(id, 0.2);
    ASSERT_TRUE(bench.ok()) << BenchTaskName(id);
    EXPECT_GT(bench->universal.num_rows(), 0u) << BenchTaskName(id);
    EXPECT_TRUE(bench->universal.schema().HasField(bench->task.target));
    EXPECT_FALSE(bench->task.measures.empty());
    EXPECT_NE(bench->model, nullptr);
  }
}

TEST(TasksTest, RowScaleScalesRows) {
  auto small = MakeTabularBench(BenchTaskId::kMovie, 0.2);
  auto large = MakeTabularBench(BenchTaskId::kMovie, 0.4);
  ASSERT_TRUE(small.ok() && large.ok());
  EXPECT_GT(large->universal.num_rows(), small->universal.num_rows());
}

TEST(TasksTest, ExtraTablesAddColumns) {
  auto base = MakeTabularBench(BenchTaskId::kMovie, 0.2);
  auto wide = MakeTabularBench(BenchTaskId::kMovie, 0.2, 3);
  ASSERT_TRUE(base.ok() && wide.ok());
  EXPECT_GT(wide->universal.num_cols(), base->universal.num_cols());
}

TEST(TasksTest, GraphBenchConstructs) {
  auto bench = MakeGraphBench(0.5);
  ASSERT_TRUE(bench.ok());
  EXPECT_EQ(bench->task.test_edges.size(),
            static_cast<size_t>(bench->task.num_users));
  EXPECT_EQ(bench->task.measures.size(), 6u);
}

}  // namespace
}  // namespace modis
