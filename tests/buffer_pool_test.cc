/// BufferPool contract tests: pin semantics (a pinned page is never
/// evicted), exactly-once dirty write-back per flush, the hard frame
/// budget, failure modes when every frame is pinned, and a randomized
/// multi-threaded pin/unpin workload that the CI thread-sanitizer job
/// runs to guard the pool's locking.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"

namespace modis {
namespace {

namespace fs = std::filesystem;

#if !defined(_WIN32)

std::string TempPath(const std::string& name) {
  const fs::path path = fs::path(::testing::TempDir()) / name;
  fs::remove(path);
  return path.string();
}

/// A writable page file with `pages` committed data pages (ids
/// 2..2+pages-1; 1 is the store-level directory page convention, unused
/// here) whose payloads carry their page id for verification.
struct PoolFixture {
  std::unique_ptr<PageFile> file;
  std::vector<uint32_t> ids;

  static PoolFixture Make(const std::string& name, size_t pages) {
    PoolFixture f;
    auto opened = PageFile::Open(TempPath(name), /*read_only=*/false);
    MODIS_CHECK(opened.ok()) << opened.status().ToString();
    f.file = std::move(opened).value();
    for (size_t i = 0; i < pages; ++i) {
      const uint32_t id = f.file->AllocatePage();
      std::vector<uint8_t> page(f.file->page_size(), 0);
      PageFile::SetPageType(page.data(), PageFile::kData);
      PageFile::SetPageUsed(page.data(), 4);
      std::memcpy(page.data() + PageFile::kPageHeaderSize, &id, sizeof(id));
      MODIS_CHECK(f.file->WritePage(id, &page).ok());
      f.ids.push_back(id);
    }
    MODIS_CHECK(f.file->Commit().ok());
    return f;
  }
};

uint32_t PayloadId(const BufferPool::PageRef& ref) {
  uint32_t id = 0;
  std::memcpy(&id, ref.data() + PageFile::kPageHeaderSize, sizeof(id));
  return id;
}

// ------------------------------------------------------------- pinning

TEST(BufferPoolTest, PinnedPageIsNeverEvicted) {
  PoolFixture f = PoolFixture::Make("bp_pin.pg", 4);
  BufferPool pool(f.file.get(), /*frame_budget=*/2);

  auto a = pool.Fetch(f.ids[0]);
  ASSERT_TRUE(a.ok());
  // Cycle enough other pages through the second frame to evict anything
  // unpinned several times over.
  for (int round = 0; round < 3; ++round) {
    for (size_t i = 1; i < f.ids.size(); ++i) {
      auto other = pool.Fetch(f.ids[i]);
      ASSERT_TRUE(other.ok());
      EXPECT_EQ(PayloadId(*other), f.ids[i]);
    }
  }
  const uint64_t misses_before = pool.stats().misses;
  auto again = pool.Fetch(f.ids[0]);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(pool.stats().misses, misses_before)
      << "the pinned page must still be resident (hit, not re-read)";
  EXPECT_EQ(PayloadId(*again), f.ids[0]);
}

TEST(BufferPoolTest, AllPinnedFailsFastInsteadOfOverBudget) {
  PoolFixture f = PoolFixture::Make("bp_full.pg", 3);
  BufferPool pool(f.file.get(), /*frame_budget=*/2);
  auto a = pool.Fetch(f.ids[0]);
  auto b = pool.Fetch(f.ids[1]);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto c = pool.Fetch(f.ids[2]);
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kFailedPrecondition);
  // Releasing one pin frees the frame for the blocked page.
  b = Result<BufferPool::PageRef>(BufferPool::PageRef());
  auto retry = pool.Fetch(f.ids[2]);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_EQ(PayloadId(*retry), f.ids[2]);
}

TEST(BufferPoolTest, RefetchWhilePinnedSharesTheFrame) {
  PoolFixture f = PoolFixture::Make("bp_share.pg", 1);
  BufferPool pool(f.file.get(), /*frame_budget=*/2);
  auto a = pool.Fetch(f.ids[0]);
  auto b = pool.Fetch(f.ids[0]);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->data(), b->data()) << "one page, one frame";
  EXPECT_EQ(pool.stats().misses, 1u);
  EXPECT_EQ(pool.stats().pinned_frames, 1u);
}

// ------------------------------------------------------------ flushing

TEST(BufferPoolTest, DirtyPagesWrittenBackExactlyOncePerFlush) {
  PoolFixture f = PoolFixture::Make("bp_flush.pg", 3);
  BufferPool pool(f.file.get(), /*frame_budget=*/4);
  for (size_t i = 0; i < 3; ++i) {
    auto ref = pool.Fetch(f.ids[i]);
    ASSERT_TRUE(ref.ok());
    ref->data()[PageFile::kPageHeaderSize + 8] = uint8_t(i + 1);
    ref->MarkDirty();
  }
  ASSERT_TRUE(pool.FlushDirty().ok());
  EXPECT_EQ(pool.stats().writebacks, 3u)
      << "each dirty page exactly once";
  // A second flush with nothing re-dirtied writes nothing.
  ASSERT_TRUE(pool.FlushDirty().ok());
  EXPECT_EQ(pool.stats().writebacks, 3u);
  ASSERT_TRUE(f.file->Commit().ok());

  // The write-back actually reached the file: drop the cache and re-read.
  ASSERT_TRUE(pool.DropAll().ok());
  for (size_t i = 0; i < 3; ++i) {
    auto ref = pool.Fetch(f.ids[i]);
    ASSERT_TRUE(ref.ok());
    EXPECT_EQ(ref->data()[PageFile::kPageHeaderSize + 8], uint8_t(i + 1));
  }
}

TEST(BufferPoolTest, EvictingDirtyFrameWritesItBackFirst) {
  PoolFixture f = PoolFixture::Make("bp_evict.pg", 3);
  BufferPool pool(f.file.get(), /*frame_budget=*/1);
  {
    auto ref = pool.Fetch(f.ids[0]);
    ASSERT_TRUE(ref.ok());
    ref->data()[PageFile::kPageHeaderSize + 8] = 0x5A;
    ref->MarkDirty();
  }
  // Fetching another page must evict the dirty frame via write-back, not
  // drop the modification.
  ASSERT_TRUE(pool.Fetch(f.ids[1]).ok());
  EXPECT_EQ(pool.stats().writebacks, 1u);
  EXPECT_EQ(pool.stats().evictions, 1u);
  auto back = pool.Fetch(f.ids[0]);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->data()[PageFile::kPageHeaderSize + 8], 0x5A);
}

// -------------------------------------------------------------- budget

TEST(BufferPoolTest, FrameBudgetOfNHoldsN) {
  constexpr size_t kBudget = 5;
  PoolFixture f = PoolFixture::Make("bp_budget.pg", 2 * kBudget + 3);
  BufferPool pool(f.file.get(), kBudget);
  for (int round = 0; round < 2; ++round) {
    for (const uint32_t id : f.ids) {
      auto ref = pool.Fetch(id);
      ASSERT_TRUE(ref.ok());
      EXPECT_EQ(PayloadId(*ref), id);
    }
  }
  const BufferPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.frames_in_use, kBudget);
  EXPECT_EQ(stats.max_frames_in_use, kBudget)
      << "the high-water mark must sit exactly at the budget, never above";
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_EQ(pool.frame_budget(), kBudget);
}

TEST(BufferPoolTest, ZeroBudgetIsClampedToOneWorkingFrame) {
  PoolFixture f = PoolFixture::Make("bp_zero.pg", 2);
  BufferPool pool(f.file.get(), 0);
  EXPECT_EQ(pool.frame_budget(), 1u);
  for (const uint32_t id : f.ids) {
    auto ref = pool.Fetch(id);
    ASSERT_TRUE(ref.ok());
    EXPECT_EQ(PayloadId(*ref), id);
  }
  EXPECT_EQ(pool.stats().max_frames_in_use, 1u);
}

TEST(BufferPoolTest, FailedReadIsNotCachedAndFrameIsRecycled) {
  PoolFixture f = PoolFixture::Make("bp_badread.pg", 2);
  BufferPool pool(f.file.get(), 2);
  // Out-of-bounds page: the read fails, and the slot it briefly occupied
  // must be reusable (no leak of the budget).
  for (int i = 0; i < 4; ++i) {
    auto bad = pool.Fetch(9999);
    ASSERT_FALSE(bad.ok());
  }
  auto a = pool.Fetch(f.ids[0]);
  auto b = pool.Fetch(f.ids[1]);
  EXPECT_TRUE(a.ok());
  EXPECT_TRUE(b.ok());
  EXPECT_LE(pool.stats().frames_in_use, 2u);
}

// ---------------------------------------------------------- threading

TEST(BufferPoolTest, RandomizedConcurrentPinUnpinIsClean) {
  // Four threads hammer a pool one quarter the size of the page set with
  // mixed reads and thread-disjoint writes. Run under TSan in CI
  // (sanitize-thread builds this suite); the assertions here check pin
  // accounting and payload integrity, the sanitizer checks the locking.
  constexpr size_t kPages = 16;
  constexpr size_t kBudget = 4;
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 400;
  PoolFixture f = PoolFixture::Make("bp_threads.pg", kPages);
  BufferPool pool(f.file.get(), kBudget);

  // Each thread owns one byte of every page's payload, so concurrent
  // writers never race on the same byte (the pool synchronizes frames,
  // not payload bytes — that contract belongs to the caller).
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      Rng rng(uint64_t(t) + 1);
      for (int op = 0; op < kOpsPerThread; ++op) {
        const uint32_t id = f.ids[size_t(rng.UniformInt(0, kPages - 1))];
        auto ref = pool.Fetch(id);
        if (!ref.ok()) {
          // Transient exhaustion (every frame pinned by peers) is the
          // documented failure mode — anything else is a bug.
          if (ref.status().code() != StatusCode::kFailedPrecondition) {
            ++failures;
          }
          continue;
        }
        if (PayloadId(*ref) != id) ++failures;
        if (op % 3 == 0) {
          ref->data()[PageFile::kPageHeaderSize + 8 + size_t(t)] =
              uint8_t(op & 0xFF);
          ref->MarkDirty();
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  const BufferPool::Stats stats = pool.stats();
  EXPECT_LE(stats.max_frames_in_use, kBudget);
  EXPECT_EQ(stats.pinned_frames, 0u) << "every ref released";
  ASSERT_TRUE(pool.FlushDirty().ok());
  ASSERT_TRUE(f.file->Commit().ok());
}

#else  // _WIN32

TEST(BufferPoolTest, UnsupportedOnWindows) {
  auto file = PageFile::Open("anywhere.pg", false);
  EXPECT_EQ(file.status().code(), StatusCode::kUnimplemented);
}

#endif  // _WIN32

}  // namespace
}  // namespace modis
