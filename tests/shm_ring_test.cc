/// Pure unit battery over the shared-memory job ring
/// (src/service/shm_ring.h): typed shed and size errors, wraparound,
/// ticket lifecycle, cancel semantics, generation-driven reclaim
/// (requeue then poison), straggler-completion drop, and — via one
/// fork()ed child that dies holding the mutex — the robust-mutex
/// EOWNERDEAD recovery path. The full worker-process kill battery
/// lives in tests/worker_crash_test.cc; everything here runs without
/// spawning a worker pool.

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "service/shm_ring.h"

namespace modis {
namespace {

namespace fs = std::filesystem;

std::string TempRingPath(const std::string& name) {
  const fs::path path = fs::path(::testing::TempDir()) / name;
  fs::remove(path);
  return path.string();
}

std::unique_ptr<ShmRing> MakeRing(const std::string& name,
                                  ShmRing::Options options = {}) {
  std::unique_ptr<ShmRing> ring;
  const Status created = ShmRing::Create(TempRingPath(name), options, &ring);
  EXPECT_TRUE(created.ok()) << created.ToString();
  return ring;
}

// ------------------------------------------------------------ lifecycle

TEST(ShmRingTest, InstallClaimCompleteAwaitRoundTrip) {
  auto ring = MakeRing("ring_roundtrip.shm");
  uint64_t ticket = 0;
  ASSERT_TRUE(ring->Install("{\"q\":1}", &ticket).ok());
  EXPECT_GT(ticket, 0u);

  ShmRing::Job job;
  ASSERT_TRUE(ring->NextJob(/*worker=*/0, /*timeout_ms=*/1000, &job).ok());
  EXPECT_EQ(job.ticket, ticket);
  EXPECT_EQ(job.request, "{\"q\":1}");
  EXPECT_EQ(job.attempt, 1u);

  ASSERT_TRUE(ring->Complete(job, Status::OK(), "{\"ok\":true}").ok());

  std::string response;
  ASSERT_TRUE(ring->Await(ticket, /*timeout_ms=*/1000, &response).ok());
  EXPECT_EQ(response, "{\"ok\":true}");

  const ShmRing::Stats stats = ring->SnapshotStats();
  EXPECT_EQ(stats.installed, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.ready, 0u);
  EXPECT_EQ(stats.claimed, 0u);
  ASSERT_GT(stats.claimed_by.size(), 0u);
  EXPECT_EQ(stats.claimed_by[0], 1u);
  EXPECT_EQ(stats.completed_by[0], 1u);
}

TEST(ShmRingTest, ErrorOutcomeTransportsTypedStatus) {
  auto ring = MakeRing("ring_error.shm");
  uint64_t ticket = 0;
  ASSERT_TRUE(ring->Install("req", &ticket).ok());
  ShmRing::Job job;
  ASSERT_TRUE(ring->NextJob(0, 1000, &job).ok());
  ASSERT_TRUE(
      ring->Complete(job, Status::InvalidArgument("bad verb"), "").ok());

  std::string response;
  const Status outcome = ring->Await(ticket, 1000, &response);
  EXPECT_EQ(outcome.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(outcome.message().find("bad verb"), std::string::npos);
  EXPECT_EQ(ring->SnapshotStats().failed, 1u);
}

TEST(ShmRingTest, AwaitConsumesTicketExactlyOnce) {
  auto ring = MakeRing("ring_consume.shm");
  uint64_t ticket = 0;
  ASSERT_TRUE(ring->Install("req", &ticket).ok());
  ShmRing::Job job;
  ASSERT_TRUE(ring->NextJob(0, 1000, &job).ok());
  ASSERT_TRUE(ring->Complete(job, Status::OK(), "resp").ok());

  std::string response;
  ASSERT_TRUE(ring->Await(ticket, 1000, &response).ok());
  // The slot is freed: a second Await on the same ticket cannot find it.
  const Status again = ring->Await(ticket, 50, &response);
  EXPECT_EQ(again.code(), StatusCode::kNotFound);
}

TEST(ShmRingTest, OldestTicketClaimedFirst) {
  auto ring = MakeRing("ring_fifo.shm");
  uint64_t t1 = 0, t2 = 0, t3 = 0;
  ASSERT_TRUE(ring->Install("a", &t1).ok());
  ASSERT_TRUE(ring->Install("b", &t2).ok());
  ASSERT_TRUE(ring->Install("c", &t3).ok());
  ShmRing::Job job;
  ASSERT_TRUE(ring->NextJob(0, 1000, &job).ok());
  EXPECT_EQ(job.ticket, t1);
  ASSERT_TRUE(ring->NextJob(1, 1000, &job).ok());
  EXPECT_EQ(job.ticket, t2);
  ASSERT_TRUE(ring->NextJob(2, 1000, &job).ok());
  EXPECT_EQ(job.ticket, t3);
}

// ------------------------------------------------------- typed errors

TEST(ShmRingTest, FullRingShedsWithResourceExhausted) {
  ShmRing::Options options;
  options.slots = 2;
  auto ring = MakeRing("ring_full.shm", options);
  uint64_t ticket = 0;
  ASSERT_TRUE(ring->Install("a", &ticket).ok());
  ASSERT_TRUE(ring->Install("b", &ticket).ok());
  const Status shed = ring->Install("c", &ticket);
  EXPECT_EQ(shed.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ring->SnapshotStats().shed, 1u);

  // Consuming one slot makes room again.
  ShmRing::Job job;
  ASSERT_TRUE(ring->NextJob(0, 1000, &job).ok());
  ASSERT_TRUE(ring->Complete(job, Status::OK(), "r").ok());
  std::string response;
  ASSERT_TRUE(ring->Await(job.ticket, 1000, &response).ok());
  EXPECT_TRUE(ring->Install("c", &ticket).ok());
}

TEST(ShmRingTest, OversizedRequestIsOutOfRange) {
  ShmRing::Options options;
  options.buffer_bytes = 256;
  auto ring = MakeRing("ring_oversized.shm", options);
  uint64_t ticket = 0;
  const Status installed =
      ring->Install(std::string(options.buffer_bytes + 1, 'x'), &ticket);
  EXPECT_EQ(installed.code(), StatusCode::kOutOfRange);
  // The exact-size line still fits.
  EXPECT_TRUE(
      ring->Install(std::string(options.buffer_bytes, 'x'), &ticket).ok());
}

TEST(ShmRingTest, OversizedResponsePoisonsTheJob) {
  ShmRing::Options options;
  options.buffer_bytes = 256;
  auto ring = MakeRing("ring_bigresp.shm", options);
  uint64_t ticket = 0;
  ASSERT_TRUE(ring->Install("req", &ticket).ok());
  ShmRing::Job job;
  ASSERT_TRUE(ring->NextJob(0, 1000, &job).ok());
  const Status completed = ring->Complete(
      job, Status::OK(), std::string(options.buffer_bytes + 1, 'y'));
  EXPECT_EQ(completed.code(), StatusCode::kOutOfRange);

  // The waiter gets a typed error, not a hang and not a truncated line.
  std::string response;
  const Status outcome = ring->Await(ticket, 1000, &response);
  EXPECT_EQ(outcome.code(), StatusCode::kOutOfRange);
}

TEST(ShmRingTest, StopMakesInstallAndNextJobFailFast) {
  auto ring = MakeRing("ring_stop.shm");
  ring->RequestStop();
  EXPECT_TRUE(ring->stop_requested());
  uint64_t ticket = 0;
  EXPECT_EQ(ring->Install("req", &ticket).code(),
            StatusCode::kFailedPrecondition);
  ShmRing::Job job;
  EXPECT_EQ(ring->NextJob(0, 1000, &job).code(),
            StatusCode::kFailedPrecondition);
}

TEST(ShmRingTest, NextJobTimesOutWithNotFound) {
  auto ring = MakeRing("ring_idle.shm");
  ShmRing::Job job;
  const Status next = ring->NextJob(0, /*timeout_ms=*/50, &job);
  EXPECT_EQ(next.code(), StatusCode::kNotFound);
}

// -------------------------------------------------------- wraparound

TEST(ShmRingTest, SlotsWrapAroundManyTimes) {
  ShmRing::Options options;
  options.slots = 3;
  auto ring = MakeRing("ring_wrap.shm", options);
  for (int round = 0; round < 20; ++round) {
    uint64_t ticket = 0;
    const std::string request = "req-" + std::to_string(round);
    ASSERT_TRUE(ring->Install(request, &ticket).ok()) << round;
    ShmRing::Job job;
    ASSERT_TRUE(ring->NextJob(round % 3, 1000, &job).ok()) << round;
    EXPECT_EQ(job.request, request);
    ASSERT_TRUE(
        ring->Complete(job, Status::OK(), "resp-" + std::to_string(round))
            .ok())
        << round;
    std::string response;
    ASSERT_TRUE(ring->Await(ticket, 1000, &response).ok()) << round;
    EXPECT_EQ(response, "resp-" + std::to_string(round));
  }
  const ShmRing::Stats stats = ring->SnapshotStats();
  EXPECT_EQ(stats.installed, 20u);
  EXPECT_EQ(stats.completed, 20u);
  EXPECT_EQ(stats.ready, 0u);
  EXPECT_EQ(stats.claimed, 0u);
}

// ---------------------------------------------------- cancel semantics

TEST(ShmRingTest, AwaitDeadlineOnUnclaimedJobFreesTheSlot) {
  ShmRing::Options options;
  options.slots = 1;
  auto ring = MakeRing("ring_cancel_ready.shm", options);
  uint64_t ticket = 0;
  ASSERT_TRUE(ring->Install("req", &ticket).ok());
  std::string response;
  const Status outcome = ring->Await(ticket, /*timeout_ms=*/50, &response);
  EXPECT_EQ(outcome.code(), StatusCode::kInternal);
  // The one slot is free again — the abandoned job did not leak it.
  EXPECT_TRUE(ring->Install("req2", &ticket).ok());
}

TEST(ShmRingTest, AwaitDeadlineOnClaimedJobDiscardsLateCompletion) {
  ShmRing::Options options;
  options.slots = 1;
  auto ring = MakeRing("ring_cancel_claimed.shm", options);
  uint64_t ticket = 0;
  ASSERT_TRUE(ring->Install("req", &ticket).ok());
  ShmRing::Job job;
  ASSERT_TRUE(ring->NextJob(0, 1000, &job).ok());

  std::string response;
  EXPECT_EQ(ring->Await(ticket, 50, &response).code(), StatusCode::kInternal);

  // The worker finishes anyway; its completion is dropped quietly and
  // the slot comes back.
  EXPECT_EQ(ring->Complete(job, Status::OK(), "late").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(ring->Install("req2", &ticket).ok());
}

// ------------------------------------------- generation-driven reclaim

TEST(ShmRingTest, StaleClaimIsRequeuedForAnotherWorker) {
  auto ring = MakeRing("ring_requeue.shm");
  uint64_t ticket = 0;
  ASSERT_TRUE(ring->Install("req", &ticket).ok());
  ShmRing::Job job;
  ASSERT_TRUE(ring->NextJob(/*worker=*/3, 1000, &job).ok());

  // Worker 3 "dies": its generation advances, its claim goes stale.
  ring->BumpWorkerGeneration(3);
  EXPECT_EQ(ring->ReclaimStale(), 1u);
  EXPECT_EQ(ring->SnapshotStats().requeued, 1u);

  // Another worker picks the same ticket up, attempt count grown.
  ShmRing::Job retry;
  ASSERT_TRUE(ring->NextJob(/*worker=*/4, 1000, &retry).ok());
  EXPECT_EQ(retry.ticket, ticket);
  EXPECT_EQ(retry.request, "req");
  EXPECT_EQ(retry.attempt, 2u);

  ASSERT_TRUE(ring->Complete(retry, Status::OK(), "resp").ok());
  std::string response;
  ASSERT_TRUE(ring->Await(ticket, 1000, &response).ok());
  EXPECT_EQ(response, "resp");
}

TEST(ShmRingTest, StragglerCompletionFromDeadIncarnationIsDropped) {
  auto ring = MakeRing("ring_straggler.shm");
  uint64_t ticket = 0;
  ASSERT_TRUE(ring->Install("req", &ticket).ok());
  ShmRing::Job stale_job;
  ASSERT_TRUE(ring->NextJob(0, 1000, &stale_job).ok());

  ring->BumpWorkerGeneration(0);
  ASSERT_EQ(ring->ReclaimStale(), 1u);
  ShmRing::Job fresh_job;
  ASSERT_TRUE(ring->NextJob(1, 1000, &fresh_job).ok());
  ASSERT_EQ(fresh_job.ticket, ticket);

  // The old incarnation answers late: dropped, never published.
  EXPECT_EQ(ring->Complete(stale_job, Status::OK(), "stale").code(),
            StatusCode::kFailedPrecondition);

  ASSERT_TRUE(ring->Complete(fresh_job, Status::OK(), "fresh").ok());
  std::string response;
  ASSERT_TRUE(ring->Await(ticket, 1000, &response).ok());
  EXPECT_EQ(response, "fresh");  // Exactly one answer, the live one.
}

TEST(ShmRingTest, MaxAttemptsPoisonsWithDeterministicError) {
  ShmRing::Options options;
  options.max_attempts = 2;
  auto ring = MakeRing("ring_poison.shm", options);
  uint64_t ticket = 0;
  ASSERT_TRUE(ring->Install("req", &ticket).ok());

  // Two claims, two deaths.
  for (uint32_t attempt = 0; attempt < options.max_attempts; ++attempt) {
    ShmRing::Job job;
    ASSERT_TRUE(ring->NextJob(attempt, 1000, &job).ok());
    EXPECT_EQ(job.attempt, attempt + 1);
    ring->BumpWorkerGeneration(attempt);
    ASSERT_EQ(ring->ReclaimStale(), 1u);
  }

  const ShmRing::Stats stats = ring->SnapshotStats();
  EXPECT_EQ(stats.poisoned, 1u);
  EXPECT_EQ(stats.requeued, 1u);  // First death requeued, second poisoned.

  // The waiter gets the typed poison verdict, not a hang.
  std::string response;
  const Status outcome = ring->Await(ticket, 1000, &response);
  EXPECT_EQ(outcome.code(), StatusCode::kInternal);
  EXPECT_NE(outcome.message().find("poisoned"), std::string::npos);

  // And a poisoned ticket never reaches another worker.
  ShmRing::Job job;
  EXPECT_EQ(ring->NextJob(5, 50, &job).code(), StatusCode::kNotFound);
}

TEST(ShmRingTest, ReclaimIgnoresLiveClaims) {
  auto ring = MakeRing("ring_live.shm");
  uint64_t ticket = 0;
  ASSERT_TRUE(ring->Install("req", &ticket).ok());
  ShmRing::Job job;
  ASSERT_TRUE(ring->NextJob(0, 1000, &job).ok());
  // Bumping a DIFFERENT worker's generation must not steal worker 0's job.
  ring->BumpWorkerGeneration(1);
  EXPECT_EQ(ring->ReclaimStale(), 0u);
  ASSERT_TRUE(ring->Complete(job, Status::OK(), "resp").ok());
  std::string response;
  EXPECT_TRUE(ring->Await(ticket, 1000, &response).ok());
}

// ------------------------------------------------- cross-process paths

TEST(ShmRingTest, AttachSeesJobsInstalledByCreator) {
  const std::string path = TempRingPath("ring_attach.shm");
  std::unique_ptr<ShmRing> ring;
  ASSERT_TRUE(ShmRing::Create(path, {}, &ring).ok());
  uint64_t ticket = 0;
  ASSERT_TRUE(ring->Install("cross", &ticket).ok());

  std::unique_ptr<ShmRing> attached;
  ASSERT_TRUE(ShmRing::Attach(path, &attached).ok());
  EXPECT_EQ(attached->slot_count(), ring->slot_count());
  ShmRing::Job job;
  ASSERT_TRUE(attached->NextJob(0, 1000, &job).ok());
  EXPECT_EQ(job.request, "cross");
  ASSERT_TRUE(attached->Complete(job, Status::OK(), "answered").ok());

  std::string response;
  ASSERT_TRUE(ring->Await(ticket, 1000, &response).ok());
  EXPECT_EQ(response, "answered");
}

TEST(ShmRingTest, AttachRejectsGarbageFile) {
  const std::string path = TempRingPath("ring_garbage.shm");
  {
    FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a ring segment", f);
    std::fclose(f);
  }
  std::unique_ptr<ShmRing> attached;
  const Status status = ShmRing::Attach(path, &attached);
  EXPECT_FALSE(status.ok());
}

/// The robust-mutex contract: a child process SIGKILLs itself inside
/// Complete() while holding the ring mutex (via the test hook). The
/// parent's next lock acquisition gets EOWNERDEAD, marks the mutex
/// consistent, and the ring keeps working — the orphaned job is then
/// recovered through the usual generation reclaim.
TEST(ShmRingTest, OwnerDeathInsideCompleteNeverWedgesTheRing) {
  const std::string path = TempRingPath("ring_ownerdeath.shm");
  std::unique_ptr<ShmRing> ring;
  ASSERT_TRUE(ShmRing::Create(path, {}, &ring).ok());
  uint64_t ticket = 0;
  ASSERT_TRUE(ring->Install("req", &ticket).ok());

  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // In the child: attach, claim, die mid-Complete with the lock held.
    std::unique_ptr<ShmRing> worker_ring;
    if (!ShmRing::Attach(path, &worker_ring).ok()) _exit(2);
    worker_ring->SetCompleteHookForTest(
        [] { ::kill(::getpid(), SIGKILL); });
    ShmRing::Job job;
    if (!worker_ring->NextJob(/*worker=*/0, 2000, &job).ok()) _exit(3);
    (void)worker_ring->Complete(job, Status::OK(), "never published");
    _exit(4);  // Unreachable: the hook killed us.
  }

  int wait_status = 0;
  ASSERT_EQ(::waitpid(child, &wait_status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(wait_status));
  ASSERT_EQ(WTERMSIG(wait_status), SIGKILL);

  // The parent must get through the orphaned mutex (EOWNERDEAD), see a
  // still-claimed slot (the state publish never happened — the write of
  // `state` is the commit point), and recover the job.
  ring->BumpWorkerGeneration(0);
  ASSERT_EQ(ring->ReclaimStale(), 1u);
  const ShmRing::Stats stats = ring->SnapshotStats();
  EXPECT_GE(stats.owner_deaths, 1u);
  EXPECT_EQ(stats.requeued, 1u);

  // A second claim finishes the job normally.
  ShmRing::Job job;
  ASSERT_TRUE(ring->NextJob(/*worker=*/1, 1000, &job).ok());
  EXPECT_EQ(job.attempt, 2u);
  ASSERT_TRUE(ring->Complete(job, Status::OK(), "recovered").ok());
  std::string response;
  ASSERT_TRUE(ring->Await(ticket, 1000, &response).ok());
  EXPECT_EQ(response, "recovered");
}

/// The kill-safe-wait contract: a child SIGKILLed while *blocked
/// waiting* for a job must cost the ring nothing. This is the case
/// that rules out process-shared condvars — a waiter killed inside
/// pthread_cond_timedwait leaks its glibc group reference and the
/// next broadcast's group switch waits on the dead process forever
/// (the serving smoke caught exactly that hang). With the futex
/// eventcount, every post-kill signal path must stay prompt.
TEST(ShmRingTest, WaiterKilledMidWaitNeverWedgesSignallers) {
  const std::string path = TempRingPath("ring_deadwaiter.shm");
  std::unique_ptr<ShmRing> ring;
  ASSERT_TRUE(ShmRing::Create(path, {}, &ring).ok());

  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // In the child: attach and park inside NextJob's idle wait. The
    // long timeout guarantees we die mid-wait, not mid-poll.
    std::unique_ptr<ShmRing> worker_ring;
    if (!ShmRing::Attach(path, &worker_ring).ok()) _exit(2);
    ShmRing::Job job;
    (void)worker_ring->NextJob(/*worker=*/0, 60000, &job);
    _exit(3);  // Unreachable: killed while waiting.
  }
  // Let the child reach the wait, then kill it there.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  ASSERT_EQ(::kill(child, SIGKILL), 0);
  int wait_status = 0;
  ASSERT_EQ(::waitpid(child, &wait_status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(wait_status));

  // Every signalling path must complete promptly despite the dead
  // waiter: install (wakes job_ready), a full round trip (wakes
  // job_done), and the stop broadcast.
  const auto start = std::chrono::steady_clock::now();
  uint64_t ticket = 0;
  ASSERT_TRUE(ring->Install("req", &ticket).ok());
  ShmRing::Job job;
  ASSERT_TRUE(ring->NextJob(/*worker=*/1, 1000, &job).ok());
  ASSERT_TRUE(ring->Complete(job, Status::OK(), "alive").ok());
  std::string response;
  ASSERT_TRUE(ring->Await(ticket, 1000, &response).ok());
  EXPECT_EQ(response, "alive");
  ring->RequestStop();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
            5);
}

// -------------------------------------------------------- concurrency

TEST(ShmRingTest, ManyProducersAndConsumersAgreeOnEveryTicket) {
  ShmRing::Options options;
  options.slots = 4;  // Small on purpose: exercises shed + wraparound.
  auto ring = MakeRing("ring_mt.shm", options);

  constexpr int kProducers = 3;
  constexpr int kJobsPerProducer = 25;
  std::atomic<bool> done{false};
  std::atomic<int> answered{0};

  std::vector<std::thread> workers;
  for (uint32_t w = 0; w < 2; ++w) {
    workers.emplace_back([&ring, &done, w] {
      while (!done.load()) {
        ShmRing::Job job;
        const Status next = ring->NextJob(w, 50, &job);
        if (!next.ok()) continue;
        (void)ring->Complete(job, Status::OK(), "echo:" + job.request);
      }
    });
  }

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, &answered, p] {
      for (int j = 0; j < kJobsPerProducer; ++j) {
        const std::string request =
            std::to_string(p) + ":" + std::to_string(j);
        uint64_t ticket = 0;
        Status installed = ring->Install(request, &ticket);
        while (installed.code() == StatusCode::kResourceExhausted) {
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
          installed = ring->Install(request, &ticket);
        }
        ASSERT_TRUE(installed.ok()) << installed.ToString();
        std::string response;
        const Status outcome = ring->Await(ticket, 10000, &response);
        ASSERT_TRUE(outcome.ok()) << outcome.ToString();
        ASSERT_EQ(response, "echo:" + request);  // Never a swapped answer.
        answered.fetch_add(1);
      }
    });
  }
  for (std::thread& t : producers) t.join();
  done.store(true);
  for (std::thread& t : workers) t.join();

  EXPECT_EQ(answered.load(), kProducers * kJobsPerProducer);
  const ShmRing::Stats stats = ring->SnapshotStats();
  EXPECT_EQ(stats.completed, uint64_t(kProducers * kJobsPerProducer));
  EXPECT_EQ(stats.ready, 0u);
  EXPECT_EQ(stats.claimed, 0u);
}

}  // namespace
}  // namespace modis
