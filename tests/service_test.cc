#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/trace.h"
#include "core/algorithms.h"
#include "datagen/tasks.h"
#include "estimator/supervised_evaluator.h"
#include "ml/gradient_boosting.h"
#include "ml/random_forest.h"
#include "service/discovery_service.h"
#include "service/json.h"
#include "service/qos.h"
#include "service/wire.h"
#include "storage/persistent_record_cache.h"
#include "storage/record_log.h"

namespace modis {
namespace {

namespace fs = std::filesystem;

constexpr double kRowScale = 0.4;

std::string TempPath(const std::string& name) {
  const fs::path path = fs::path(::testing::TempDir()) / name;
  fs::remove(path);
  fs::remove(fs::path(path.string() + ".compact"));
  return path.string();
}

/// The canonical test query: T2 at a small budget, wall-clock measures
/// excluded so answers are bit-reproducible.
DiscoveryRequest MakeRequest(const std::string& variant) {
  DiscoveryRequest request;
  request.task = "T2";
  request.variant = variant;
  request.epsilon = 0.25;
  request.budget = 40;
  request.maxl = 2;
  request.measures = {"f1", "acc", "fisher", "mi"};
  return request;
}

DiscoveryService::Options SmallServiceOptions() {
  DiscoveryService::Options options;
  options.sessions = 2;
  options.queue_capacity = 16;
  options.valuation_threads = 2;
  options.task_row_scale = kRowScale;
  return options;
}

void ExpectSameSkylines(const DiscoveryResponse& a,
                        const DiscoveryResponse& b) {
  auto sorted = [](const DiscoveryResponse& r) {
    std::vector<DiscoverySkylineRow> rows = r.skyline;
    std::sort(rows.begin(), rows.end(),
              [](const DiscoverySkylineRow& x, const DiscoverySkylineRow& y) {
                return x.signature < y.signature;
              });
    return rows;
  };
  const auto rows_a = sorted(a);
  const auto rows_b = sorted(b);
  ASSERT_EQ(rows_a.size(), rows_b.size());
  ASSERT_FALSE(rows_a.empty());
  for (size_t i = 0; i < rows_a.size(); ++i) {
    EXPECT_EQ(rows_a[i].signature, rows_b[i].signature);
    EXPECT_EQ(rows_a[i].level, rows_b[i].level);
    EXPECT_EQ(rows_a[i].rows, rows_b[i].rows);
    EXPECT_EQ(rows_a[i].cols, rows_b[i].cols);
    ASSERT_EQ(rows_a[i].raw.size(), rows_b[i].raw.size());
    for (size_t j = 0; j < rows_a[i].raw.size(); ++j) {
      EXPECT_DOUBLE_EQ(rows_a[i].raw[j], rows_b[i].raw[j]);
      EXPECT_DOUBLE_EQ(rows_a[i].normalized[j], rows_b[i].normalized[j]);
    }
  }
}

// ----------------------------------------------------------------- json

TEST(JsonTest, ParseDumpRoundTrip) {
  const std::string text =
      R"({"a":1,"b":-2.5,"c":"x\n\"y\"","d":[true,false,null],"e":{"f":[1,2]}})";
  auto parsed = JsonValue::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Dump(), text);
  EXPECT_EQ(parsed->GetNumber("a", 0), 1.0);
  EXPECT_EQ(parsed->GetNumber("b", 0), -2.5);
  EXPECT_EQ(parsed->GetString("c", ""), "x\n\"y\"");
  ASSERT_NE(parsed->Get("d"), nullptr);
  EXPECT_EQ(parsed->Get("d")->AsArray().size(), 3u);
}

TEST(JsonTest, RejectsMalformedDocuments) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "{\"a\" 1}", "tru", "1 2",
        "\"unterminated", "{\"a\":1}}", "nan"}) {
    EXPECT_FALSE(JsonValue::Parse(bad).ok()) << bad;
  }
}

TEST(JsonTest, NumbersRoundTripIntegersExactly) {
  auto parsed = JsonValue::Parse("{\"n\":90071992547409,\"f\":0.125}");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Dump(), "{\"n\":90071992547409,\"f\":0.125}");
}

// ----------------------------------------------------------------- wire

TEST(WireTest, RequestRoundTrip) {
  DiscoveryRequest request = MakeRequest("div");
  request.oracle = "gbm";
  request.cache_path = "/tmp/x.rlog";
  request.cache_mode = "read";
  request.cache_namespace = "ns";
  request.seed = 77;
  auto decoded = ParseDiscoveryRequest(SerializeDiscoveryRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->task, request.task);
  EXPECT_EQ(decoded->variant, request.variant);
  EXPECT_EQ(decoded->oracle, request.oracle);
  EXPECT_EQ(decoded->measures, request.measures);
  EXPECT_DOUBLE_EQ(decoded->epsilon, request.epsilon);
  EXPECT_EQ(decoded->budget, request.budget);
  EXPECT_EQ(decoded->maxl, request.maxl);
  EXPECT_EQ(decoded->k, request.k);
  EXPECT_DOUBLE_EQ(decoded->alpha, request.alpha);
  EXPECT_EQ(decoded->cache_path, request.cache_path);
  EXPECT_EQ(decoded->cache_mode, request.cache_mode);
  EXPECT_EQ(decoded->cache_namespace, request.cache_namespace);
  EXPECT_EQ(decoded->seed, request.seed);
}

TEST(WireTest, RequestRequiresTask) {
  EXPECT_FALSE(ParseDiscoveryRequest("{\"variant\":\"bi\"}").ok());
  EXPECT_FALSE(ParseDiscoveryRequest("[1,2]").ok());
  EXPECT_FALSE(ParseDiscoveryRequest("not json").ok());
}

TEST(WireTest, ErrorResponsesDecodeIntoStatus) {
  const std::string line =
      SerializeDiscoveryError(Status::InvalidArgument("bad task"));
  auto decoded = ParseDiscoveryResponse(line);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("bad task"), std::string::npos);
  EXPECT_NE(decoded.status().message().find("InvalidArgument"),
            std::string::npos);
}

// -------------------------------------------------------------- service

TEST(ServiceTest, AnswerMatchesDetachedBatchRun) {
  DiscoveryService service(SmallServiceOptions());
  const DiscoveryRequest request = MakeRequest("bi");
  auto served = service.Answer(request);
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  EXPECT_EQ(served->task, "T2-house");
  EXPECT_FALSE(served->cache_active);
  EXPECT_EQ(served->measure_names,
            (std::vector<std::string>{"f1", "acc", "fisher", "mi"}));

  auto batch = DiscoveryService::AnswerDetached(request, kRowScale);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ExpectSameSkylines(*served, *batch);
  EXPECT_EQ(served->valuated_states, batch->valuated_states);
  EXPECT_EQ(served->exact_evals, batch->exact_evals);
}

/// Both cache engines must serve the service determinism contracts
/// identically: 0 = the v1 record log, 4096 = the paged engine.
class ServiceCacheEngineTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ServiceCacheEngineTest, WarmQueryReplaysWithZeroTrainings) {
  const uint32_t page_size = GetParam();
  DiscoveryService::Options options = SmallServiceOptions();
  options.cache_page_size = page_size;
  options.default_cache_path =
      TempPath("service_warm_" + std::to_string(page_size) + ".rlog");
  DiscoveryService service(options);
  const DiscoveryRequest request = MakeRequest("bi");

  auto cold = service.Answer(request);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_TRUE(cold->cache_active);
  EXPECT_GT(cold->exact_evals, 0u);
  EXPECT_EQ(cold->persistent_hits, 0u);

  auto warm = service.Answer(request);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_EQ(warm->exact_evals, 0u);
  EXPECT_EQ(warm->persistent_hits, cold->exact_evals);
  ExpectSameSkylines(*cold, *warm);
}

TEST(ServiceTest, PerQueryReadModeServesWithoutAppending) {
  DiscoveryService::Options options = SmallServiceOptions();
  options.default_cache_path = TempPath("service_read.rlog");
  DiscoveryService service(options);

  DiscoveryRequest request = MakeRequest("bi");
  auto cold = service.Answer(request);
  ASSERT_TRUE(cold.ok());

  // A kRead view of the shared cache: replays everything recorded, but a
  // different variant's extra trainings must not be appended.
  DiscoveryRequest read_request = MakeRequest("apx");
  read_request.cache_mode = "read";
  auto read_run = service.Answer(read_request);
  ASSERT_TRUE(read_run.ok()) << read_run.status().ToString();
  EXPECT_GT(read_run->persistent_hits, 0u);

  // Re-running apx read_write now should still have trainings to do —
  // the read-mode run wrote nothing, so nothing extra replays from the
  // cache (the host-wide fusion memo may serve them without retraining,
  // which is the fused_hits share of the accounting).
  auto rw_run = service.Answer(MakeRequest("apx"));
  ASSERT_TRUE(rw_run.ok());
  EXPECT_EQ(rw_run->persistent_hits, read_run->persistent_hits);
  EXPECT_EQ(rw_run->exact_evals + rw_run->fused_hits, read_run->exact_evals);
  ExpectSameSkylines(*read_run, *rw_run);
}

/// The acceptance gate of the serving subsystem: 4 concurrent clients
/// sharing one locked cache file finish with no corruption and skylines
/// byte-identical to serial execution — on either cache engine.
TEST_P(ServiceCacheEngineTest, FourConcurrentClientsMatchSerialOnSharedCache) {
  const uint32_t page_size = GetParam();
  const std::vector<std::string> variants = {"apx", "nobi", "bi", "div"};

  // Serial reference: one session, its own cache file.
  std::vector<DiscoveryResponse> serial;
  {
    DiscoveryService::Options options = SmallServiceOptions();
    options.sessions = 1;
    options.cache_page_size = page_size;
    options.default_cache_path =
        TempPath("service_serial_" + std::to_string(page_size) + ".rlog");
    DiscoveryService service(options);
    for (const std::string& variant : variants) {
      auto response = service.Answer(MakeRequest(variant));
      ASSERT_TRUE(response.ok()) << response.status().ToString();
      serial.push_back(std::move(response).value());
    }
  }

  // Concurrent run: 4 sessions, 4 client threads, one fresh shared file.
  const std::string cache_path =
      TempPath("service_concurrent_" + std::to_string(page_size) + ".rlog");
  std::vector<Result<DiscoveryResponse>> concurrent(
      variants.size(), Result<DiscoveryResponse>(Status::Internal("unset")));
  {
    DiscoveryService::Options options = SmallServiceOptions();
    options.sessions = 4;
    options.cache_page_size = page_size;
    options.default_cache_path = cache_path;
    DiscoveryService service(options);
    ASSERT_TRUE(service.Preload("T2").ok());
    std::vector<std::thread> clients;
    for (size_t i = 0; i < variants.size(); ++i) {
      clients.emplace_back([&service, &concurrent, &variants, i] {
        concurrent[i] = service.Answer(MakeRequest(variants[i]));
      });
    }
    for (std::thread& c : clients) c.join();
  }

  for (size_t i = 0; i < variants.size(); ++i) {
    ASSERT_TRUE(concurrent[i].ok()) << concurrent[i].status().ToString();
    ExpectSameSkylines(serial[i], concurrent[i].value());
    // Replays and fused trainings may replace own trainings across
    // concurrent queries, but every valuation is accounted for exactly.
    EXPECT_EQ(concurrent[i]->exact_evals + concurrent[i]->persistent_hits +
                  concurrent[i]->fused_hits,
              serial[i].exact_evals + serial[i].persistent_hits +
                  serial[i].fused_hits);
  }

  // No corruption: the shared file reloads cleanly end to end,
  // whichever engine wrote it.
  if (page_size == 0) {
    std::vector<StoredRecord> records;
    auto log = RecordLog::Open(cache_path, /*read_only=*/true, &records);
    ASSERT_TRUE(log.ok()) << log.status().ToString();
    EXPECT_EQ(log->discarded_tail_bytes(), 0u);
    EXPECT_GT(records.size(), 0u);
    for (const StoredRecord& r : records) {
      EXPECT_FALSE(r.key.empty());
      EXPECT_EQ(r.eval.raw.size(), 4u);
      EXPECT_EQ(r.eval.normalized.size(), 4u);
    }
  } else {
    PersistentRecordCache::Options cache_options;
    cache_options.page_size = page_size;
    auto reopened = PersistentRecordCache::Open(
        cache_path, CacheMode::kRead, /*fingerprint=*/0, cache_options);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    EXPECT_GT((*reopened)->stats().loaded_records, 0u);
    EXPECT_EQ((*reopened)->stats().discarded_tail_bytes, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Engines, ServiceCacheEngineTest,
                         ::testing::Values(0u, 4096u),
                         [](const ::testing::TestParamInfo<uint32_t>& info) {
                           return "Page" + std::to_string(info.param);
                         });

/// The cross-query fusion gate: two clients racing the same cold query
/// (no record cache, so fusion is the only sharing path) train each
/// unique state exactly once host-wide and answer byte-identically to
/// the detached serial reference.
TEST(ServiceTest, ConcurrentOverlappingColdQueriesFuseTrainings) {
  const DiscoveryRequest request = MakeRequest("bi");
  auto serial = DiscoveryService::AnswerDetached(request, kRowScale);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_GT(serial->exact_evals, 0u);
  // A detached run trains everything itself, so the columnar-mask fast
  // path (popcount over the cached materialization) must be exercised.
  EXPECT_GT(serial->mask_fast_path_hits, 0u);

  std::vector<Result<DiscoveryResponse>> fused(
      2, Result<DiscoveryResponse>(Status::Internal("unset")));
  DiscoveryService service(SmallServiceOptions());
  ASSERT_TRUE(service.Preload("T2").ok());
  {
    std::vector<std::thread> clients;
    for (size_t i = 0; i < fused.size(); ++i) {
      clients.emplace_back([&service, &fused, &request, i] {
        fused[i] = service.Answer(request);
      });
    }
    for (std::thread& c : clients) c.join();
  }

  size_t executed = 0, shared = 0, mask_hits = 0;
  for (const auto& response : fused) {
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ExpectSameSkylines(*serial, response.value());
    // Every valuation is accounted for: an own training or a fused share.
    EXPECT_EQ(response->exact_evals + response->fused_hits,
              serial->exact_evals);
    executed += response->exact_evals;
    shared += response->fused_hits;
    mask_hits += response->mask_fast_path_hits;
  }
  // Each unique state was trained exactly once across the whole host;
  // every duplicate request was served by the fuser.
  EXPECT_EQ(executed, serial->exact_evals);
  EXPECT_EQ(shared, serial->exact_evals);

  // The metrics registry exports the same accounting.
  const MetricsSnapshot snapshot = service.SnapshotMetrics();
  EXPECT_EQ(snapshot.trainings_shared, shared);
  EXPECT_EQ(snapshot.mask_fast_path_hits, mask_hits);
  EXPECT_GE(snapshot.queries_fused, 1u);
  EXPECT_LE(snapshot.queries_fused, 2u);
}

TEST(ServiceTest, AdmissionQueueRejectsWhenFull) {
  DiscoveryService::Options options = SmallServiceOptions();
  options.sessions = 1;
  options.queue_capacity = 1;
  DiscoveryService* service = new DiscoveryService(options);

  std::atomic<size_t> completed{0};
  size_t accepted = 0, rejected = 0;
  for (int i = 0; i < 6; ++i) {
    const Status submitted = service->Submit(
        MakeRequest("apx"),
        [&completed](Result<DiscoveryResponse> response) {
          EXPECT_TRUE(response.ok());
          completed.fetch_add(1);
        });
    if (submitted.ok()) {
      ++accepted;
    } else {
      ++rejected;
      EXPECT_NE(submitted.message().find("queue full"), std::string::npos);
    }
  }
  EXPECT_GE(accepted, 1u);
  EXPECT_GE(rejected, 1u);
  const auto stats = service->stats();
  EXPECT_EQ(stats.accepted, accepted);
  EXPECT_EQ(stats.rejected, rejected);

  // Destruction drains: every accepted request completes, none is lost.
  delete service;
  EXPECT_EQ(completed.load(), accepted);
}

TEST(ServiceTest, UnknownInputsFailCleanly) {
  DiscoveryService service(SmallServiceOptions());
  DiscoveryRequest request = MakeRequest("bi");
  request.task = "T9";
  EXPECT_FALSE(service.Answer(request).ok());

  request = MakeRequest("bi");
  request.variant = "fastest";
  EXPECT_FALSE(service.Answer(request).ok());

  request = MakeRequest("bi");
  request.measures = {"no_such_measure"};
  EXPECT_FALSE(service.Answer(request).ok());

  request = MakeRequest("bi");
  request.oracle = "oracle-of-delphi";
  EXPECT_FALSE(service.Answer(request).ok());
}

// ----------------------------------------------------- context lifecycle

/// The LRU cap: a host bounded to one live context serves T2, evicts it
/// to make room for T1, and transparently rebuilds it for the next T2
/// query — with an identical skyline (contexts are derived data).
TEST(ServiceLifecycleTest, LruEvictedContextIsRebuiltTransparently) {
  DiscoveryService::Options options = SmallServiceOptions();
  options.max_task_contexts = 1;
  DiscoveryService service(options);

  auto first = service.Answer(MakeRequest("bi"));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  MetricsSnapshot snapshot = service.SnapshotMetrics();
  EXPECT_EQ(snapshot.live_contexts, 1u);
  EXPECT_EQ(snapshot.context_builds, 1u);
  EXPECT_EQ(snapshot.context_evictions, 0u);

  // Loading T1 exceeds the cap: T2 (the LRU victim) is evicted.
  ASSERT_TRUE(service.Preload("T1").ok());
  snapshot = service.SnapshotMetrics();
  EXPECT_EQ(snapshot.live_contexts, 1u);
  EXPECT_EQ(snapshot.context_builds, 2u);
  EXPECT_EQ(snapshot.context_evictions, 1u);

  // The next T2 query rebuilds the context and answers identically.
  auto second = service.Answer(MakeRequest("bi"));
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  snapshot = service.SnapshotMetrics();
  EXPECT_EQ(snapshot.live_contexts, 1u);
  EXPECT_EQ(snapshot.context_builds, 3u);
  EXPECT_EQ(snapshot.context_evictions, 2u);
  ExpectSameSkylines(*first, *second);
  // The rebuilt context computes the same TaskFingerprint, so the
  // host-wide fusion memo replays the first query's trainings instead of
  // re-executing them — identical answer, shared work.
  EXPECT_EQ(first->exact_evals, second->exact_evals + second->fused_hits);
}

/// A cap of N holds N contexts: lookups that hit at exactly the cap
/// must not evict (that would make the cap effectively N-1 and thrash
/// alternating workloads with context rebuilds).
TEST(ServiceLifecycleTest, LruCapHoldsExactlyCapContextsWithoutThrashing) {
  DiscoveryService::Options options = SmallServiceOptions();
  options.max_task_contexts = 2;
  DiscoveryService service(options);

  ASSERT_TRUE(service.Preload("T2").ok());
  ASSERT_TRUE(service.Preload("T1").ok());
  // Alternate hits at the cap: nothing is evicted, nothing rebuilt.
  ASSERT_TRUE(service.Preload("T2").ok());
  ASSERT_TRUE(service.Preload("T1").ok());
  const MetricsSnapshot snapshot = service.SnapshotMetrics();
  EXPECT_EQ(snapshot.live_contexts, 2u);
  EXPECT_EQ(snapshot.context_builds, 2u);
  EXPECT_EQ(snapshot.context_evictions, 0u);
}

/// The idle TTL: a context that nobody queried for longer than the TTL
/// is dropped by the sweep of the next context lookup, and the task
/// still answers (identically) afterwards.
TEST(ServiceLifecycleTest, IdleContextIsEvictedByTtlAndRebuilt) {
  DiscoveryService::Options options = SmallServiceOptions();
  options.context_idle_ttl_s = 0.2;
  DiscoveryService service(options);

  auto first = service.Answer(MakeRequest("bi"));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(service.SnapshotMetrics().live_contexts, 1u);

  std::this_thread::sleep_for(std::chrono::milliseconds(400));

  // Any context lookup sweeps: loading T1 finds T2 beyond its TTL.
  ASSERT_TRUE(service.Preload("T1").ok());
  MetricsSnapshot snapshot = service.SnapshotMetrics();
  EXPECT_GE(snapshot.context_evictions, 1u);
  EXPECT_EQ(snapshot.live_contexts, 1u);

  auto second = service.Answer(MakeRequest("bi"));
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  ExpectSameSkylines(*first, *second);
}

// ----------------------------------------------------- cache byte budget

/// Hosts default to a *bounded* cache (256 MiB) rather than unbounded
/// growth, and the budget is actually enforced end to end: a tiny budget
/// keeps the log file under it across queries that would otherwise
/// accumulate records forever.
TEST(ServiceLifecycleTest, DefaultCacheBudgetIsBoundedAndEnforced) {
  // The production default: bounded, not 0.
  EXPECT_EQ(DiscoveryService::Options().cache_max_bytes,
            DiscoveryService::Options::kDefaultCacheMaxBytes);
  EXPECT_GT(DiscoveryService::Options::kDefaultCacheMaxBytes, 0u);

  const std::string path = TempPath("service_budget.rlog");
  const uint64_t budget = 4096;
  {
    DiscoveryService::Options options = SmallServiceOptions();
    options.default_cache_path = path;
    options.cache_max_bytes = budget;
    DiscoveryService service(options);
    for (const char* variant : {"bi", "apx"}) {
      auto response = service.Answer(MakeRequest(variant));
      ASSERT_TRUE(response.ok()) << response.status().ToString();
    }
    EXPECT_GT(service.SnapshotMetrics().cache_evictions, 0u);
  }
  // After the final flush the log observes the budget.
  ASSERT_TRUE(fs::exists(path));
  EXPECT_LE(fs::file_size(path), budget);
}

// ---------------------------------------------------- satellite coverage

/// Parallel surrogate batch prediction must not change the skyline: the
/// kSurrogate fan-out (oracle.cc) is a pure function of the committed
/// estimator, so nt=1 and nt=4 agree bit for bit.
TEST(ServiceSatelliteTest, SurrogateSkylineIdenticalAcrossThreadCounts) {
  auto bench = MakeTabularBench(BenchTaskId::kHouse, kRowScale);
  ASSERT_TRUE(bench.ok());
  auto universe =
      SearchUniverse::Build(bench->universal, bench->universe_options);
  ASSERT_TRUE(universe.ok());
  SupervisedTask task = bench->task;
  task.measures.clear();
  for (const MeasureSpec& m : bench->task.measures) {
    if (m.name != "train_time") task.measures.push_back(m);
  }

  auto run = [&](size_t num_threads) {
    SupervisedEvaluator evaluator(task, bench->model->Clone());
    MoGbmOracle oracle(&evaluator);
    ModisConfig config;
    config.epsilon = 0.25;
    config.max_states = 90;
    config.max_level = 3;
    config.num_threads = num_threads;
    auto result = RunBiModis(*universe, &oracle, config);
    EXPECT_TRUE(result.ok());
    return std::move(result).value();
  };

  const ModisResult serial = run(1);
  const ModisResult threaded = run(4);
  EXPECT_GT(serial.oracle_stats.surrogate_evals, 0u);
  EXPECT_EQ(serial.oracle_stats.surrogate_evals,
            threaded.oracle_stats.surrogate_evals);
  ASSERT_EQ(serial.skyline.size(), threaded.skyline.size());
  for (size_t i = 0; i < serial.skyline.size(); ++i) {
    EXPECT_EQ(serial.skyline[i].state.Signature(),
              threaded.skyline[i].state.Signature());
    for (size_t j = 0; j < serial.skyline[i].eval.normalized.size(); ++j) {
      EXPECT_DOUBLE_EQ(serial.skyline[i].eval.normalized[j],
                       threaded.skyline[i].eval.normalized[j]);
    }
  }
}

/// A byte-bounded shared cache may evict a record between a session's
/// plan (which marked it kPersistent) and its commit. The oracle must
/// degrade that to a fresh inline training — identical evaluation, no
/// crash — never abort the host.
TEST(ServiceSatelliteTest, EvictedPlannedHitDegradesToFreshTraining) {
  auto bench = MakeTabularBench(BenchTaskId::kHouse, kRowScale);
  ASSERT_TRUE(bench.ok());
  auto universe =
      SearchUniverse::Build(bench->universal, bench->universe_options);
  ASSERT_TRUE(universe.ok());
  SupervisedTask task = bench->task;
  task.measures.clear();
  for (const MeasureSpec& m : bench->task.measures) {
    if (m.name != "train_time") task.measures.push_back(m);
  }
  SupervisedEvaluator evaluator(task, bench->model->Clone());

  // A budget smaller than any record: every flush evicts everything.
  PersistentRecordCache::Options tiny;
  tiny.max_bytes = RecordLog::kHeaderSize;
  const std::string path = TempPath("evict_race.rlog");
  auto cache =
      PersistentRecordCache::Open(path, CacheMode::kReadWrite, 11, tiny);
  ASSERT_TRUE(cache.ok());

  const StateBitmap state = universe->FullBitmap();
  auto make_request = [&] {
    ValuationRequest request;
    request.key = state.Signature();
    request.features = universe->StateFeatures(state);
    request.materialize = [&universe, &state] {
      return universe->MaterializeRecord(state);
    };
    return request;
  };

  // Seed the record directly (append buffered, NOT yet flushed — an
  // oracle batch would flush and the tiny budget would evict at once).
  auto trained = evaluator.Evaluate(universe->Materialize(state));
  ASSERT_TRUE(trained.ok());
  const Evaluation truth = trained.value();
  (*cache)->Insert(11, state.Signature(), universe->StateFeatures(state),
                   truth);

  // Session 2 plans a replay of that record...
  ExactOracle second(&evaluator);
  second.AttachRecordCache(cache->get(), 11);
  std::vector<ValuationRequest> requests;
  requests.push_back(make_request());
  BatchPlan plan = second.PrepareBatch(std::move(requests));
  ASSERT_EQ(plan.modes[0], BatchPlan::Mode::kPersistent);

  // ...then a "concurrent" flush evicts it before the commit runs.
  MODIS_CHECK_OK((*cache)->Flush());
  ASSERT_FALSE((*cache)->Contains(11, state.Signature()));

  const auto results = second.ValuateBatch(std::move(plan), nullptr);
  ASSERT_TRUE(results[0].ok()) << results[0].status().ToString();
  EXPECT_EQ(second.stats().persistent_hits, 0u);
  EXPECT_EQ(second.stats().exact_evals, 1u);
  for (size_t j = 0; j < truth.normalized.size(); ++j) {
    EXPECT_DOUBLE_EQ(results[0].value().normalized[j], truth.normalized[j]);
  }
}

/// Two tasks that differ only in the trained model prototype must not
/// share a fingerprint (the docs/PERSISTENCE.md §4 footgun, now closed).
TEST(ServiceSatelliteTest, ModelIdentityScopesTheTaskFingerprint) {
  auto bench = MakeTabularBench(BenchTaskId::kHouse, kRowScale);
  ASSERT_TRUE(bench.ok());
  auto universe =
      SearchUniverse::Build(bench->universal, bench->universe_options);
  ASSERT_TRUE(universe.ok());

  SupervisedEvaluator forest(bench->task,
                             std::make_unique<RandomForestClassifier>());
  SupervisedEvaluator gbm(bench->task,
                          std::make_unique<GradientBoostingClassifier>());
  EXPECT_NE(forest.ModelIdentity(), gbm.ModelIdentity());

  const uint64_t fp_forest = ModisEngine::TaskFingerprint(
      *universe, bench->task.measures, "", forest.ModelIdentity());
  const uint64_t fp_gbm = ModisEngine::TaskFingerprint(
      *universe, bench->task.measures, "", gbm.ModelIdentity());
  EXPECT_NE(fp_forest, fp_gbm);

  // The oracle plumbs the identity through unchanged, for both kinds.
  ExactOracle exact(&forest);
  MoGbmOracle surrogate(&forest);
  EXPECT_EQ(exact.ModelIdentity(), forest.ModelIdentity());
  EXPECT_EQ(surrogate.ModelIdentity(), forest.ModelIdentity());
}

// -------------------------------------------------------- multi-tenant QoS

TEST(QosTest, ParseTenantSpecGrammarAndErrors) {
  auto full = ParseTenantSpec("gold:gold-key:5:10:3:7");
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  EXPECT_EQ(full->name, "gold");
  EXPECT_EQ(full->api_key, "gold-key");
  EXPECT_EQ(full->rate_per_s, 5.0);
  EXPECT_EQ(full->burst, 10.0);
  EXPECT_EQ(full->max_in_flight, 3u);
  EXPECT_EQ(full->priority, 7);

  auto minimal = ParseTenantSpec("free:free-key");
  ASSERT_TRUE(minimal.ok());
  EXPECT_EQ(minimal->rate_per_s, 0.0);
  EXPECT_EQ(minimal->burst, 0.0);  // No bucket: unlimited rate.
  EXPECT_EQ(minimal->max_in_flight, 0u);
  EXPECT_EQ(minimal->priority, 0);

  auto catch_all = ParseTenantSpec("default::0:0:2:-1");
  ASSERT_TRUE(catch_all.ok());
  EXPECT_TRUE(catch_all->api_key.empty());  // Catch-all tenant.
  EXPECT_EQ(catch_all->priority, -1);

  for (const char* bad :
       {"", ":key", "na me:key", "t:key:-1", "t:key:5:0",  // rate needs burst
        "t:key:5:x", "t:key:0:0:1.5", "t:key:0:0:0:9999", "t:key:0:0:0:x"}) {
    EXPECT_FALSE(ParseTenantSpec(bad).ok()) << bad;
  }

  const Status rejected = QosRejected("gold", "rate limited", 2.5);
  EXPECT_EQ(rejected.code(), StatusCode::kResourceExhausted);
  EXPECT_DOUBLE_EQ(RetryAfterSeconds(rejected), 2.5);
  EXPECT_EQ(RetryAfterSeconds(Status::OK()), 0.0);
  EXPECT_EQ(RetryAfterSeconds(Status::ResourceExhausted("no hint")), 0.0);
}

/// The fairness gate: a rate-limited tenant gets 429s while every other
/// tenant's answers stay byte-identical to an uncontended (QoS-off) run.
TEST(QosTest, RateLimitedTenantDoesNotPerturbOtherTenantsAnswers) {
  // Uncontended reference: identical service shape and query sequence,
  // no QoS. Rate-limited queries never execute, so the contended run
  // below must reproduce these counters exactly.
  DiscoveryResponse reference;
  {
    DiscoveryService service(SmallServiceOptions());
    ASSERT_TRUE(service.Answer(MakeRequest("apx")).ok());
    auto response = service.Answer(MakeRequest("bi"));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    reference = std::move(response).value();
  }

  DiscoveryService::Options options = SmallServiceOptions();
  TenantSpec gold;
  gold.name = "gold";
  gold.api_key = "gold-key";
  gold.priority = 10;
  TenantSpec bronze;
  bronze.name = "bronze";
  bronze.api_key = "bronze-key";
  bronze.rate_per_s = 0.0;  // Never refills: deterministic burst-then-429.
  bronze.burst = 1.0;
  options.tenants = {gold, bronze};
  DiscoveryService service(options);

  DiscoveryRequest bronze_request = MakeRequest("apx");
  bronze_request.api_key = "bronze-key";
  ASSERT_TRUE(service.Answer(bronze_request).ok());
  for (int i = 0; i < 3; ++i) {
    auto limited = service.Answer(bronze_request);
    ASSERT_FALSE(limited.ok());
    EXPECT_EQ(limited.status().code(), StatusCode::kResourceExhausted) << i;
    EXPECT_GT(RetryAfterSeconds(limited.status()), 0.0) << i;
  }

  DiscoveryRequest gold_request = MakeRequest("bi");
  gold_request.api_key = "gold-key";
  auto gold_response = service.Answer(gold_request);
  ASSERT_TRUE(gold_response.ok()) << gold_response.status().ToString();
  ExpectSameSkylines(reference, gold_response.value());
  EXPECT_EQ(gold_response->exact_evals, reference.exact_evals);
  EXPECT_EQ(gold_response->valuated_states, reference.valuated_states);

  const MetricsSnapshot snapshot = service.SnapshotMetrics();
  EXPECT_EQ(snapshot.qos_rate_limited, 3u);
  ASSERT_EQ(snapshot.tenants.size(), 3u);  // gold, bronze, anonymous.
  EXPECT_EQ(snapshot.tenants[0].name, "gold");
  EXPECT_EQ(snapshot.tenants[0].served, 1u);
  EXPECT_EQ(snapshot.tenants[1].name, "bronze");
  EXPECT_EQ(snapshot.tenants[1].rate_limited, 3u);
  EXPECT_EQ(snapshot.tenants[1].served, 1u);
}

/// Blocks until the admission queue is empty (every queued job picked up
/// by a session) — the hook the deterministic QoS tests use to pin the
/// queue state before overloading it.
void WaitForEmptyQueue(DiscoveryService* service) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (service->SnapshotMetrics().queue_depth > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(service->SnapshotMetrics().queue_depth, 0u);
}

TEST(QosTest, InFlightQuotaRejectsTheExcessSynchronously) {
  DiscoveryService::Options options = SmallServiceOptions();
  options.sessions = 1;
  TenantSpec capped;
  capped.name = "capped";
  capped.api_key = "capped-key";
  capped.max_in_flight = 2;
  options.tenants = {capped};
  DiscoveryService service(options);

  DiscoveryRequest request = MakeRequest("apx");
  request.api_key = "capped-key";
  std::atomic<size_t> completed{0};
  const auto count_done = [&completed](Result<DiscoveryResponse> response) {
    EXPECT_TRUE(response.ok());
    completed.fetch_add(1);
  };
  // The quota counts queued AND executing work: two submits fill it (one
  // executing on the single session, one queued), the third is rejected
  // at the door, synchronously.
  ASSERT_TRUE(service.Submit(request, count_done).ok());
  ASSERT_TRUE(service.Submit(request, count_done).ok());
  const Status third = service.Submit(request, count_done);
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(third.message().find("in-flight quota"), std::string::npos);
  EXPECT_GT(RetryAfterSeconds(third), 0.0);

  const MetricsSnapshot snapshot = service.SnapshotMetrics();
  ASSERT_EQ(snapshot.tenants.size(), 2u);
  EXPECT_EQ(snapshot.tenants[0].quota_rejected, 1u);
}

/// The shed-ordering gate: under a full queue, the cheapest-to-retry
/// queued work goes first — low priority before high, cold before warm —
/// and work that outranks nothing is rejected at the door instead.
TEST(QosTest, ShedOrderingDisplacesLowPriorityColdBeforeHighWarm) {
  DiscoveryService::Options options = SmallServiceOptions();
  options.sessions = 1;
  options.queue_capacity = 2;
  TenantSpec low;
  low.name = "low";
  low.api_key = "low-key";
  low.priority = 0;
  TenantSpec high;
  high.name = "high";
  high.api_key = "high-key";
  high.priority = 10;
  options.tenants = {low, high};
  auto service = std::make_unique<DiscoveryService>(options);

  // Pre-warm one query so the shed ordering can tell warm from cold
  // (warmth is keyed on the request with the credential stripped).
  DiscoveryRequest warm_request = MakeRequest("apx");
  warm_request.api_key = "low-key";
  ASSERT_TRUE(service->Answer(warm_request).ok());

  std::mutex mu;
  std::vector<std::string> events;
  const auto record = [&mu, &events](const std::string& label) {
    return [&mu, &events, label](Result<DiscoveryResponse> response) {
      std::string event = label;
      if (response.ok()) {
        event += ":ok";
      } else if (response.status().message().find("shed under overload") !=
                 std::string::npos) {
        event += ":shed";
        EXPECT_EQ(response.status().code(), StatusCode::kResourceExhausted);
      } else {
        event += ":" + response.status().ToString();
      }
      std::lock_guard<std::mutex> lock(mu);
      events.push_back(std::move(event));
    };
  };

  // Occupy the single session (a cold query runs for hundreds of ms;
  // every submit below lands within microseconds of each other).
  ASSERT_TRUE(service->Submit(MakeRequest("bi"), record("blocker")).ok());
  WaitForEmptyQueue(service.get());

  // Fill the queue to capacity: a low-priority cold job and the
  // low-priority warm one.
  DiscoveryRequest low_cold = MakeRequest("div");
  low_cold.api_key = "low-key";
  ASSERT_TRUE(service->Submit(low_cold, record("low-cold")).ok());
  ASSERT_TRUE(service->Submit(warm_request, record("low-warm")).ok());

  // A high-priority submit displaces the low-priority COLD job first
  // (the warm one is nearly free to produce, so the cold one is the
  // better retry candidate) ...
  DiscoveryRequest high_cold = MakeRequest("nobi");
  high_cold.api_key = "high-key";
  ASSERT_TRUE(service->Submit(high_cold, record("high-1")).ok());
  {
    std::lock_guard<std::mutex> lock(mu);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0], "low-cold:shed");
  }

  // ... and the next one displaces the low-priority WARM job.
  DiscoveryRequest high_cold2 = MakeRequest("bi");
  high_cold2.api_key = "high-key";
  ASSERT_TRUE(service->Submit(high_cold2, record("high-2")).ok());
  {
    std::lock_guard<std::mutex> lock(mu);
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[1], "low-warm:shed");
  }

  // With only high-priority work queued, a low submit outranks nothing:
  // rejected at the door, not displacing anything.
  const Status door = service->Submit(low_cold, record("low-again"));
  ASSERT_FALSE(door.ok());
  EXPECT_EQ(door.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(door.message().find("queue full"), std::string::npos);

  // Drain: everything still queued completes, highest priority first.
  service.reset();
  {
    std::lock_guard<std::mutex> lock(mu);
    ASSERT_EQ(events.size(), 5u);
    EXPECT_EQ(events[2], "blocker:ok");
    EXPECT_EQ(events[3], "high-1:ok");
    EXPECT_EQ(events[4], "high-2:ok");
  }
}

/// Drain mid-overload: every job accepted before the drain completes in
/// full; every shed job saw exactly one ResourceExhausted callback; no
/// callback is ever dropped.
TEST(QosTest, DrainMidOverloadCompletesAllAcceptedWork) {
  DiscoveryService::Options options = SmallServiceOptions();
  options.sessions = 1;
  options.queue_capacity = 2;
  TenantSpec low;
  low.name = "low";
  low.api_key = "low-key";
  low.priority = 0;
  TenantSpec high;
  high.name = "high";
  high.api_key = "high-key";
  high.priority = 10;
  options.tenants = {low, high};
  auto* service = new DiscoveryService(options);

  std::atomic<size_t> completed{0};
  std::atomic<size_t> shed{0};
  size_t accepted = 0;
  size_t door_rejected = 0;
  const std::vector<std::string> variants = {"apx", "nobi", "bi", "div"};
  for (size_t i = 0; i < 8; ++i) {
    DiscoveryRequest request = MakeRequest(variants[i % variants.size()]);
    request.api_key = (i % 2 == 0) ? "low-key" : "high-key";
    const Status submitted = service->Submit(
        request, [&completed, &shed](Result<DiscoveryResponse> response) {
          if (response.ok()) {
            completed.fetch_add(1);
          } else {
            EXPECT_EQ(response.status().code(),
                      StatusCode::kResourceExhausted);
            shed.fetch_add(1);
          }
        });
    if (submitted.ok()) {
      ++accepted;
    } else {
      ++door_rejected;
      EXPECT_EQ(submitted.code(), StatusCode::kResourceExhausted);
    }
  }
  EXPECT_GE(accepted, 3u);  // The executing job + a full queue, at least.

  const auto stats_before = service->stats();
  delete service;  // Drain mid-overload.

  // Every accepted job resolved exactly once: completed or shed.
  EXPECT_EQ(completed.load() + shed.load(), accepted);
  EXPECT_EQ(stats_before.accepted, accepted);
  EXPECT_EQ(accepted + door_rejected, 8u);
}

// ---------------------------------------------------------------- tracing

TEST(TraceRecorderTest, SpanTreeBasics) {
  TraceRecorder recorder;
  const SpanId root = recorder.Begin("query", kNoSpan);
  const SpanId child = recorder.Begin("plan", root);
  recorder.AddAttr(child, "batch_size", 7);
  recorder.End(child);
  recorder.End(root);
  const std::vector<TraceSpan> spans = recorder.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "query");
  EXPECT_EQ(spans[0].parent, kNoSpan);
  EXPECT_EQ(spans[1].parent, root);
  ASSERT_EQ(spans[1].attrs.size(), 1u);
  EXPECT_EQ(spans[1].attrs[0].first, "batch_size");
  EXPECT_EQ(spans[1].attrs[0].second, 7);
  EXPECT_GE(spans[1].start_ms, spans[0].start_ms);
  EXPECT_GE(spans[0].duration_ms, spans[1].duration_ms);
  EXPECT_GE(spans[1].duration_ms, 0.0);
  EXPECT_DOUBLE_EQ(SumSpanMs(spans, "plan"), spans[1].duration_ms);
  EXPECT_DOUBLE_EQ(SumSpanMs(spans, "absent"), 0.0);
}

TEST(TraceRecorderTest, UnendedAndInvalidSpansAreHarmless) {
  TraceRecorder recorder;
  const SpanId open = recorder.Begin("open", kNoSpan);
  recorder.End(kNoSpan);     // No-op.
  recorder.End(SpanId(99));  // Out of range: no-op.
  recorder.AddAttr(kNoSpan, "x", 1);
  recorder.AddAttr(SpanId(99), "x", 1);
  auto spans = recorder.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_LT(spans[0].duration_ms, 0.0);  // Still open.
  // Unended spans never contribute to phase sums.
  EXPECT_DOUBLE_EQ(SumSpanMs(spans, "open"), 0.0);
  recorder.End(open);
  const double first = recorder.Snapshot()[0].duration_ms;
  EXPECT_GE(first, 0.0);
  recorder.End(open);  // Double End keeps the first duration.
  EXPECT_DOUBLE_EQ(recorder.Snapshot()[0].duration_ms, first);
}

TEST(TraceRingTest, BoundsAndEvictionOrder) {
  TraceRing ring(/*recent_capacity=*/2, /*slow_capacity=*/2);
  auto make = [](uint64_t sequence, double total_ms) {
    Trace trace;
    trace.request_id = "q-" + std::to_string(sequence);
    trace.sequence = sequence;
    trace.total_ms = total_ms;
    return trace;
  };
  ring.Add(make(1, 10.0));
  ring.Add(make(2, 30.0));
  ring.Add(make(3, 20.0));
  ring.Add(make(4, 5.0));
  // Recent is FIFO, oldest evicted first.
  const auto recent = ring.Recent();
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_EQ(recent[0].sequence, 3u);
  EXPECT_EQ(recent[1].sequence, 4u);
  // Slowest is sorted by total time, bounded, fastest evicted.
  const auto slow = ring.Slowest();
  ASSERT_EQ(slow.size(), 2u);
  EXPECT_EQ(slow[0].sequence, 2u);
  EXPECT_EQ(slow[1].sequence, 3u);
}

/// The span-tree acceptance gate: a warm traced query returns the full
/// admission → context → run → level/batch(plan/train/commit) → respond
/// taxonomy with complete durations, and a repeat produces the identical
/// (name, parent) sequence — tracing consumes no randomness.
TEST(ServiceTraceTest, WarmTracedQueryReturnsDeterministicSpanTree) {
  DiscoveryService::Options options = SmallServiceOptions();
  options.default_cache_path = TempPath("service_trace.rlog");
  DiscoveryService service(options);
  ASSERT_TRUE(service.Answer(MakeRequest("bi")).ok());  // Cold, untraced.

  DiscoveryRequest traced = MakeRequest("bi");
  traced.trace = true;
  auto first = service.Answer(traced);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first->request_id.empty());
  const std::vector<TraceSpan>& spans = first->trace_spans;
  ASSERT_FALSE(spans.empty());
  EXPECT_EQ(spans[0].name, "query");
  EXPECT_EQ(spans[0].parent, kNoSpan);
  SpanId run_span = kNoSpan;
  for (const TraceSpan& span : spans) {
    if (span.parent != kNoSpan) {
      ASSERT_GE(span.parent, 0);
      ASSERT_LT(size_t(span.parent), spans.size());
    }
    EXPECT_GE(span.duration_ms, 0.0) << span.name;  // All ended.
    EXPECT_GE(span.start_ms, 0.0);
    if (span.name == "run") run_span = span.id;
  }
  ASSERT_NE(run_span, kNoSpan);
  auto count = [&spans](const char* name) {
    size_t n = 0;
    for (const TraceSpan& s : spans) n += size_t(s.name == name);
    return n;
  };
  EXPECT_EQ(count("admission"), 1u);
  EXPECT_EQ(count("context"), 1u);
  EXPECT_EQ(count("run"), 1u);
  EXPECT_EQ(count("respond"), 1u);
  EXPECT_GE(count("level"), 1u);
  EXPECT_GE(count("batch"), 1u);
  EXPECT_GE(count("plan"), 1u);
  EXPECT_GE(count("train"), 1u);
  EXPECT_GE(count("commit"), 1u);
  EXPECT_GE(count("flush"), 1u);
  EXPECT_EQ(count("exact"), 0u);  // Warm: everything replays.
  for (const TraceSpan& span : spans) {
    if (span.name == "level") {
      EXPECT_EQ(span.parent, run_span);
    }
  }
  // Phase durations stay within the root span that contains them.
  const double total = spans[0].duration_ms;
  for (const char* phase : {"admission", "context", "run", "respond"}) {
    EXPECT_LE(SumSpanMs(spans, phase), total + 0.001) << phase;
  }

  auto second = service.Answer(traced);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  ASSERT_EQ(second->trace_spans.size(), spans.size());
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(second->trace_spans[i].name, spans[i].name) << i;
    EXPECT_EQ(second->trace_spans[i].parent, spans[i].parent) << i;
  }
  EXPECT_NE(second->request_id, first->request_id);
}

/// trace-on ≡ trace-off: the flag only controls the inline echo. Two
/// fresh hosts answer the same fixed-seed query byte-identically whether
/// tracing is requested or not.
TEST(ServiceTraceTest, TracingDoesNotPerturbTheAnswer) {
  DiscoveryResponse off;
  {
    DiscoveryService service(SmallServiceOptions());
    auto response = service.Answer(MakeRequest("bi"));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_TRUE(response->trace_spans.empty());
    off = std::move(response).value();
  }
  DiscoveryResponse on;
  {
    DiscoveryService service(SmallServiceOptions());
    DiscoveryRequest traced = MakeRequest("bi");
    traced.trace = true;
    auto response = service.Answer(traced);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_FALSE(response->trace_spans.empty());
    on = std::move(response).value();
  }
  ExpectSameSkylines(off, on);
  EXPECT_EQ(off.valuated_states, on.valuated_states);
  EXPECT_EQ(off.generated_states, on.generated_states);
  EXPECT_EQ(off.pruned_states, on.pruned_states);
  EXPECT_EQ(off.exact_evals, on.exact_evals);
}

/// The TSan gate: concurrent traced cold queries fan their exact
/// trainings over the shared pool while each worker writes "exact" spans
/// into its query's recorder. Everything completes, ids stay unique, and
/// the retention rings respect their bounds.
TEST(ServiceTraceTest, ConcurrentTracedQueriesAreCleanAndRetained) {
  DiscoveryService::Options options = SmallServiceOptions();
  options.sessions = 4;
  options.trace_recent_capacity = 3;
  options.trace_slow_capacity = 2;
  DiscoveryService service(options);
  ASSERT_TRUE(service.Preload("T2").ok());
  const std::vector<std::string> variants = {"apx", "nobi", "bi", "div"};
  std::vector<Result<DiscoveryResponse>> responses(
      variants.size(), Result<DiscoveryResponse>(Status::Internal("unset")));
  std::vector<std::thread> clients;
  for (size_t i = 0; i < variants.size(); ++i) {
    clients.emplace_back([&service, &responses, &variants, i] {
      DiscoveryRequest request = MakeRequest(variants[i]);
      request.trace = true;
      responses[i] = service.Answer(request);
    });
  }
  for (std::thread& c : clients) c.join();

  std::set<std::string> ids;
  bool exact_span_seen = false;
  for (const auto& response : responses) {
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_FALSE(response->trace_spans.empty());
    EXPECT_FALSE(response->request_id.empty());
    ids.insert(response->request_id);
    for (const TraceSpan& span : response->trace_spans) {
      exact_span_seen = exact_span_seen || span.name == "exact";
    }
  }
  EXPECT_EQ(ids.size(), variants.size());
  EXPECT_TRUE(exact_span_seen);

  EXPECT_LE(service.RecentTraces().size(), 3u);
  EXPECT_GE(service.RecentTraces().size(), 1u);
  EXPECT_LE(service.SlowestTraces().size(), 2u);

  // Always-on recording feeds the per-phase histograms for every served
  // query, traced or not.
  const MetricsSnapshot snapshot = service.SnapshotMetrics();
  EXPECT_EQ(snapshot.phase_plan_ms.count, variants.size());
  EXPECT_EQ(snapshot.phase_train_ms.count, variants.size());
  EXPECT_EQ(snapshot.phase_respond_ms.count, variants.size());
}

TEST(WireTest, TraceFlagAndRequestIdRoundTrip) {
  DiscoveryRequest request = MakeRequest("bi");
  // Absent unless set, so traced and untraced requests serialize to the
  // same line otherwise (warm keys hash the serialized request).
  EXPECT_EQ(SerializeDiscoveryRequest(request).find("\"trace\""),
            std::string::npos);
  request.trace = true;
  auto decoded = ParseDiscoveryRequest(SerializeDiscoveryRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded->trace);

  DiscoveryResponse response;
  response.request_id = "q-000042";
  TraceSpan span;
  span.name = "query";
  span.id = 0;
  span.parent = kNoSpan;
  span.start_ms = 0.0;
  span.duration_ms = 1.5;
  span.attrs.emplace_back("level", 2);
  response.trace_spans.push_back(span);
  auto parsed = ParseDiscoveryResponse(SerializeDiscoveryResponse(response));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->request_id, "q-000042");
  ASSERT_EQ(parsed->trace_spans.size(), 1u);
  EXPECT_EQ(parsed->trace_spans[0].name, "query");
  EXPECT_EQ(parsed->trace_spans[0].parent, kNoSpan);
  EXPECT_DOUBLE_EQ(parsed->trace_spans[0].duration_ms, 1.5);
  ASSERT_EQ(parsed->trace_spans[0].attrs.size(), 1u);
  EXPECT_EQ(parsed->trace_spans[0].attrs[0].first, "level");
  EXPECT_EQ(parsed->trace_spans[0].attrs[0].second, 2);
}

TEST(WireTest, TraceVerbServesTheDebugRing) {
  DiscoveryService service(SmallServiceOptions());
  ASSERT_TRUE(service.Answer(MakeRequest("apx")).ok());
  const std::string reply =
      HandleServiceLine(&service, "{\"verb\":\"trace\"}");
  auto doc = JsonValue::Parse(reply);
  ASSERT_TRUE(doc.ok()) << reply;
  EXPECT_TRUE(doc->GetBool("ok", false));
  const JsonValue* events = doc->Get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_FALSE(events->AsArray().empty());
  // Chrome trace_event grammar: per-trace metadata records plus "X"
  // complete events with non-negative µs timestamps.
  bool meta_seen = false, complete_seen = false;
  for (const JsonValue& event : events->AsArray()) {
    const std::string ph = event.GetString("ph", "");
    if (ph == "M") meta_seen = true;
    if (ph == "X") {
      complete_seen = true;
      EXPECT_GE(event.GetNumber("ts", -1.0), 0.0);
      EXPECT_GE(event.GetNumber("dur", -1.0), 0.0);
    }
  }
  EXPECT_TRUE(meta_seen);
  EXPECT_TRUE(complete_seen);

  const std::string unknown = HandleServiceLine(
      &service, "{\"verb\":\"frobnicate\",\"task\":\"T2\"}");
  EXPECT_NE(unknown.find("discover | metrics | trace"), std::string::npos);
}

TEST(QosTest, HighPriorityJumpsTheAdmissionQueue) {
  DiscoveryService::Options options = SmallServiceOptions();
  options.sessions = 1;
  options.queue_capacity = 8;
  TenantSpec low;
  low.name = "low";
  low.api_key = "low-key";
  low.priority = 0;
  TenantSpec high;
  high.name = "high";
  high.api_key = "high-key";
  high.priority = 10;
  options.tenants = {low, high};

  std::mutex mu;
  std::vector<std::string> order;
  const auto record = [&mu, &order](const std::string& label) {
    return [&mu, &order, label](Result<DiscoveryResponse> response) {
      EXPECT_TRUE(response.ok()) << label;
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(label);
    };
  };

  {
    DiscoveryService service(options);
    ASSERT_TRUE(service.Submit(MakeRequest("bi"), record("blocker")).ok());
    WaitForEmptyQueue(&service);

    DiscoveryRequest low_request = MakeRequest("apx");
    low_request.api_key = "low-key";
    DiscoveryRequest high_request = MakeRequest("nobi");
    high_request.api_key = "high-key";
    ASSERT_TRUE(service.Submit(low_request, record("low-1")).ok());
    low_request.variant = "div";
    ASSERT_TRUE(service.Submit(low_request, record("low-2")).ok());
    ASSERT_TRUE(service.Submit(high_request, record("high")).ok());
  }  // Destructor drains.

  // The high-priority job was submitted last but runs first; the two
  // low jobs keep FIFO order between themselves.
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], "blocker");
  EXPECT_EQ(order[1], "high");
  EXPECT_EQ(order[2], "low-1");
  EXPECT_EQ(order[3], "low-2");
}

}  // namespace
}  // namespace modis
