#include <gtest/gtest.h>

#include "datagen/graph_gen.h"
#include "graph/bipartite_graph.h"
#include "graph/lightgcn.h"

namespace modis {
namespace {

TEST(BipartiteGraphTest, AddEdgeUpdatesAdjacency) {
  BipartiteGraph g(3, 4);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(2, 1);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.ItemsOf(0), (std::vector<int>{1, 2}));
  EXPECT_EQ(g.UsersOf(1), (std::vector<int>{0, 2}));
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(1, 1));
}

Table EdgeTable() {
  Table t(Schema({{"user", ColumnType::kNumeric},
                  {"item", ColumnType::kNumeric},
                  {"w", ColumnType::kNumeric}}));
  EXPECT_TRUE(t.AppendRow({Value(int64_t{0}), Value(int64_t{1}), Value(1.0)}).ok());
  EXPECT_TRUE(t.AppendRow({Value(int64_t{1}), Value(int64_t{0}), Value(1.0)}).ok());
  EXPECT_TRUE(t.AppendRow({Value(int64_t{0}), Value(int64_t{1}), Value(2.0)}).ok());
  EXPECT_TRUE(t.AppendRow({Value::Null(), Value(int64_t{0}), Value(1.0)}).ok());
  return t;
}

TEST(BipartiteGraphTest, FromEdgeTableDedupsAndSkipsNulls) {
  auto g = BipartiteGraph::FromEdgeTable(EdgeTable(), "user", "item", 2, 2);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 2u);  // Duplicate and null-row skipped.
}

TEST(BipartiteGraphTest, FromEdgeTableValidates) {
  EXPECT_FALSE(
      BipartiteGraph::FromEdgeTable(EdgeTable(), "nope", "item", 2, 2).ok());
  EXPECT_FALSE(
      BipartiteGraph::FromEdgeTable(EdgeTable(), "user", "item", 1, 1).ok());
}

TEST(LightGcnTest, RejectsEmptyGraph) {
  BipartiteGraph g(2, 2);
  LightGcn model;
  Rng rng(1);
  EXPECT_FALSE(model.Fit(g, &rng).ok());
}

TEST(LightGcnTest, LearnsCommunityStructure) {
  // Two communities: users 0-4 like items 0-9, users 5-9 like items 10-19.
  BipartiteGraph g(10, 20);
  Rng gen(2);
  for (int u = 0; u < 10; ++u) {
    const int base = u < 5 ? 0 : 10;
    for (int e = 0; e < 6; ++e) {
      int item = base + static_cast<int>(gen.UniformInt(10));
      if (!g.HasEdge(u, item)) g.AddEdge(u, item);
    }
  }
  LightGcn model({.embedding_dim = 8, .num_layers = 2, .epochs = 30});
  Rng rng(3);
  ASSERT_TRUE(model.Fit(g, &rng).ok());
  // An in-community unseen item should outrank an out-community item on
  // average.
  double in_score = 0, out_score = 0;
  int n = 0;
  for (int u = 0; u < 5; ++u) {
    for (int i = 0; i < 10; ++i) {
      if (g.HasEdge(u, i)) continue;
      in_score += model.Score(u, i);
      out_score += model.Score(u, i + 10);
      ++n;
    }
  }
  ASSERT_GT(n, 0);
  EXPECT_GT(in_score / n, out_score / n);
}

TEST(LightGcnTest, RankItemsExcludesAndOrders) {
  BipartiteGraph g(4, 6);
  g.AddEdge(0, 0);
  g.AddEdge(0, 1);
  g.AddEdge(1, 1);
  g.AddEdge(2, 2);
  g.AddEdge(3, 3);
  LightGcn model({.embedding_dim = 4, .epochs = 5});
  Rng rng(4);
  ASSERT_TRUE(model.Fit(g, &rng).ok());
  auto ranked = model.RankItems(0, {0, 1});
  EXPECT_EQ(ranked.size(), 4u);
  for (int item : ranked) {
    EXPECT_NE(item, 0);
    EXPECT_NE(item, 1);
  }
  // Descending by score.
  for (size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_GE(model.Score(0, ranked[i - 1]), model.Score(0, ranked[i]));
  }
}

TEST(LightGcnTest, DeterministicGivenSeed) {
  BipartiteGraph g(5, 8);
  Rng gen(5);
  for (int u = 0; u < 5; ++u) {
    for (int e = 0; e < 3; ++e) {
      int item = static_cast<int>(gen.UniformInt(8));
      if (!g.HasEdge(u, item)) g.AddEdge(u, item);
    }
  }
  LightGcn a({.epochs = 5}), b({.epochs = 5});
  Rng ra(6), rb(6);
  ASSERT_TRUE(a.Fit(g, &ra).ok());
  ASSERT_TRUE(b.Fit(g, &rb).ok());
  for (int u = 0; u < 5; ++u) {
    for (int i = 0; i < 8; ++i) {
      EXPECT_DOUBLE_EQ(a.Score(u, i), b.Score(u, i));
    }
  }
}

TEST(EvaluateLinkTaskTest, ProducesAllMetrics) {
  auto lake = GenerateGraphLake({.num_users = 20,
                                 .num_items = 40,
                                 .num_communities = 2,
                                 .true_edges_per_user = 5,
                                 .test_edges_per_user = 2,
                                 .noise_edges_per_user = 2,
                                 .seed = 7});
  ASSERT_TRUE(lake.ok());
  auto graph = BipartiteGraph::FromEdgeTable(lake->edge_table, "user", "item",
                                             20, 40);
  ASSERT_TRUE(graph.ok());
  auto result = EvaluateLinkTask(graph.value(), lake->test_edges, {5, 10},
                                 {.epochs = 10}, 8);
  ASSERT_TRUE(result.ok());
  for (const char* key :
       {"p@5", "r@5", "ndcg@5", "p@10", "r@10", "ndcg@10", "train_seconds"}) {
    ASSERT_TRUE(result->metrics.count(key)) << key;
  }
  for (const auto& [k, v] : result->metrics) {
    EXPECT_GE(v, 0.0) << k;
  }
  EXPECT_LE(result->metrics.at("p@5"), 1.0);
}

TEST(EvaluateLinkTaskTest, RejectsWrongTestShape) {
  BipartiteGraph g(3, 3);
  g.AddEdge(0, 0);
  std::vector<std::vector<int>> wrong(2);
  EXPECT_FALSE(EvaluateLinkTask(g, wrong, {5}, {}, 1).ok());
}

TEST(EvaluateLinkTaskTest, BetterThanRandomOnCommunities) {
  auto lake = GenerateGraphLake({.num_users = 30,
                                 .num_items = 60,
                                 .num_communities = 3,
                                 .true_edges_per_user = 8,
                                 .test_edges_per_user = 3,
                                 .noise_edges_per_user = 0,
                                 .seed = 9});
  ASSERT_TRUE(lake.ok());
  auto graph = BipartiteGraph::FromEdgeTable(lake->edge_table, "user", "item",
                                             30, 60);
  ASSERT_TRUE(graph.ok());
  auto result = EvaluateLinkTask(graph.value(), lake->test_edges, {10},
                                 {.epochs = 30}, 10);
  ASSERT_TRUE(result.ok());
  // Random P@10 on clean communities would be ~3/52; LightGCN should beat
  // that clearly.
  EXPECT_GT(result->metrics.at("p@10"), 0.12);
}

}  // namespace
}  // namespace modis
