#include "core/universe.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "datagen/tasks.h"

namespace modis {
namespace {

struct Fixture {
  TabularBench bench;
  SearchUniverse universe;

  static Fixture Make() {
    auto bench = MakeTabularBench(BenchTaskId::kHouse, 0.4);
    EXPECT_TRUE(bench.ok());
    auto uni =
        SearchUniverse::Build(bench->universal, bench->universe_options);
    EXPECT_TRUE(uni.ok());
    return {std::move(bench).value(), std::move(uni).value()};
  }
};

void ExpectTablesEqual(const Table& actual, const Table& expected,
                       const std::string& context) {
  ASSERT_EQ(actual.num_cols(), expected.num_cols()) << context;
  ASSERT_EQ(actual.num_rows(), expected.num_rows()) << context;
  for (size_t c = 0; c < actual.num_cols(); ++c) {
    EXPECT_EQ(actual.schema().field(c).name, expected.schema().field(c).name)
        << context;
  }
  for (size_t r = 0; r < actual.num_rows(); ++r) {
    for (size_t c = 0; c < actual.num_cols(); ++c) {
      ASSERT_EQ(actual.At(r, c), expected.At(r, c))
          << context << " cell (" << r << "," << c << ")";
    }
  }
}

void ExpectIncrementalMatchesFresh(const SearchUniverse& universe,
                                   const Materialization& parent,
                                   const StateBitmap& child,
                                   const std::string& context) {
  MaterializationPtr inc = universe.MaterializeFrom(parent, child);
  MaterializationPtr fresh = universe.MaterializeRecord(child);
  ASSERT_NE(inc, nullptr) << context;
  EXPECT_EQ(inc->mask, fresh->mask) << context;
  EXPECT_EQ(inc->row_ids(), fresh->row_ids()) << context;
  EXPECT_EQ(inc->mask.Count(), universe.CountRowsScan(child)) << context;
  ExpectTablesEqual(inc->table, fresh->table, context);
  ExpectTablesEqual(inc->table, universe.Materialize(child), context);
}

TEST(MaterializeFromTest, ReductEdgesFromUniversalState) {
  auto f = Fixture::Make();
  const UnitLayout& layout = f.universe.layout();
  const StateBitmap full = f.universe.FullBitmap();
  const MaterializationPtr parent = f.universe.MaterializeRecord(full);

  for (size_t u = 0; u < layout.num_units(); ++u) {
    if (layout.IsAttributeUnit(u) && !layout.attr_flippable[u]) continue;
    ExpectIncrementalMatchesFresh(f.universe, *parent, full.WithFlipped(u),
                                  "reduct unit " + std::to_string(u));
  }
}

TEST(MaterializeFromTest, ReductChainReusesIncrementalParents) {
  // Walk a multi-step Reduct path, deriving every level from the previous
  // *incremental* materialization — errors would compound if any edge
  // diverged from a fresh scan.
  auto f = Fixture::Make();
  const UnitLayout& layout = f.universe.layout();
  StateBitmap state = f.universe.FullBitmap();
  MaterializationPtr parent = f.universe.MaterializeRecord(state);

  size_t steps = 0;
  // Alternate cluster and attribute flips across the layout: odd units
  // walk from the back so cluster drops hit attributes that stay included.
  for (size_t u = 0; u < layout.num_units() && steps < 6; ++u) {
    const size_t unit = steps % 2 == 0 ? layout.num_units() - 1 - u : u;
    if (!state.Get(unit)) continue;
    if (layout.IsAttributeUnit(unit)) {
      if (!layout.attr_flippable[unit]) continue;
    } else if (!state.Get(layout.cluster(unit).attr_index)) {
      continue;  // Cluster flips need their attribute included.
    }
    StateBitmap child = state.WithFlipped(unit);
    ExpectIncrementalMatchesFresh(f.universe, *parent, child,
                                  "chain unit " + std::to_string(unit));
    parent = f.universe.MaterializeFrom(*parent, child);
    state = child;
    ++steps;
  }
  EXPECT_GE(steps, 4u);
}

TEST(MaterializeFromTest, AugmentEdgesFromBackwardState) {
  auto f = Fixture::Make();
  const UnitLayout& layout = f.universe.layout();
  const StateBitmap back = f.universe.BackwardBitmap();
  const MaterializationPtr parent = f.universe.MaterializeRecord(back);

  for (size_t u = 0; u < layout.num_units(); ++u) {
    if (back.Get(u)) continue;  // Augment flips 0 -> 1.
    if (layout.IsAttributeUnit(u) && !layout.attr_flippable[u]) continue;
    ExpectIncrementalMatchesFresh(f.universe, *parent, back.WithFlipped(u),
                                  "augment unit " + std::to_string(u));
  }
}

TEST(MaterializeFromTest, AugmentClusterEdgeAfterClusterDrop) {
  // Exercise the relaxing cluster flip 0 -> 1 with its attribute included:
  // rows removed by the dropped cluster must resurrect exactly.
  auto f = Fixture::Make();
  const UnitLayout& layout = f.universe.layout();
  ASSERT_FALSE(layout.clusters.empty());
  const size_t unit = layout.num_attributes();  // First cluster unit.

  StateBitmap reduced = f.universe.FullBitmap().WithFlipped(unit);
  const MaterializationPtr parent = f.universe.MaterializeRecord(reduced);
  ASSERT_LT(parent->row_ids().size(), f.bench.universal.num_rows())
      << "cluster drop removed no rows; test would be vacuous";
  ExpectIncrementalMatchesFresh(f.universe, *parent,
                                reduced.WithFlipped(unit),
                                "cluster resurrect");
}

TEST(MaterializeFromTest, PreservesNullCells) {
  // The universal table comes from a full outer join, so it carries null
  // cells; incremental materialization must hand them through untouched.
  auto f = Fixture::Make();
  ASSERT_GT(f.bench.universal.NullFraction(), 0.0)
      << "fixture lost its null cells; pick a task with an outer join";

  const StateBitmap full = f.universe.FullBitmap();
  const MaterializationPtr parent = f.universe.MaterializeRecord(full);
  const UnitLayout& layout = f.universe.layout();
  size_t checked = 0;
  for (size_t u = 0; u < layout.num_units() && checked < 3; ++u) {
    if (layout.IsAttributeUnit(u) && !layout.attr_flippable[u]) continue;
    StateBitmap child = full.WithFlipped(u);
    MaterializationPtr inc = f.universe.MaterializeFrom(*parent, child);
    if (inc->table.NullFraction() == 0.0) continue;
    ExpectTablesEqual(inc->table, f.universe.Materialize(child),
                      "null-carrying child " + std::to_string(u));
    ++checked;
  }
  EXPECT_GT(checked, 0u) << "no child table carried nulls";
}

TEST(MaterializeFromTest, FallsBackOnMultiFlipEdges) {
  auto f = Fixture::Make();
  const UnitLayout& layout = f.universe.layout();
  const StateBitmap full = f.universe.FullBitmap();
  const MaterializationPtr parent = f.universe.MaterializeRecord(full);

  size_t a = layout.num_attributes(), b = layout.num_attributes();
  for (size_t u = 0; u < layout.num_attributes(); ++u) {
    if (!layout.attr_flippable[u]) continue;
    if (a == layout.num_attributes()) {
      a = u;
    } else {
      b = u;
      break;
    }
  }
  ASSERT_LT(b, layout.num_attributes());
  StateBitmap child = full.WithFlipped(a).WithFlipped(b);
  MaterializationPtr inc = f.universe.MaterializeFrom(*parent, child);
  MaterializationPtr fresh = f.universe.MaterializeRecord(child);
  EXPECT_EQ(inc->row_ids(), fresh->row_ids());
  ExpectTablesEqual(inc->table, fresh->table, "two-flip fallback");
}

// ------------------------------------------------------------- Mask vs scan

TEST(RowMaskTest, TailBitsStayZeroOnNonMultipleOf64Sizes) {
  RowMask full(70, true);
  EXPECT_EQ(full.Count(), 70u);
  EXPECT_TRUE(full.Get(69));

  RowMask sparse(70, false);
  EXPECT_EQ(sparse.Count(), 0u);
  sparse.Set(0, true);
  sparse.Set(63, true);
  sparse.Set(64, true);
  sparse.Set(69, true);
  EXPECT_EQ(sparse.Count(), 4u);
  EXPECT_EQ(sparse.ToRowIds(), (std::vector<uint32_t>{0, 63, 64, 69}));

  // ANDNOT against the complement must not conjure tail rows.
  full.AndNotWith(sparse);
  EXPECT_EQ(full.Count(), 66u);
  full.OrWith(sparse);
  EXPECT_EQ(full.Count(), 70u);

  std::vector<uint32_t> seen;
  sparse.ForEachSet([&seen](uint32_t r) { seen.push_back(r); });
  EXPECT_EQ(seen, sparse.ToRowIds());
}

TEST(RowMaskPathTest, CountRowsMatchesScanOnEveryOneFlipChild) {
  auto f = Fixture::Make();
  const UnitLayout& layout = f.universe.layout();
  std::vector<StateBitmap> states = {f.universe.FullBitmap(),
                                     f.universe.BackwardBitmap()};
  const size_t num_seeds = states.size();
  for (size_t s = 0; s < num_seeds; ++s) {
    for (size_t u = 0; u < layout.num_units(); ++u) {
      if (layout.IsAttributeUnit(u) && !layout.attr_flippable[u]) continue;
      states.push_back(states[s].WithFlipped(u));
    }
  }
  size_t nontrivial = 0;
  for (const StateBitmap& state : states) {
    const size_t scan = f.universe.CountRowsScan(state);
    EXPECT_EQ(f.universe.CountRows(state), scan);
    EXPECT_EQ(f.universe.SurvivingMask(state).Count(), scan);
    EXPECT_EQ(f.universe.SurvivingMask(state).ToRowIds(),
              f.universe.MaterializeRecord(state)->row_ids());
    if (scan < f.bench.universal.num_rows()) ++nontrivial;
  }
  EXPECT_GT(nontrivial, 0u) << "no state filtered any row; battery vacuous";
}

TEST(RowMaskPathTest, StateFeaturesFromCachedMaskMatchRecompute) {
  auto f = Fixture::Make();
  const StateBitmap full = f.universe.FullBitmap();
  const size_t unit = f.universe.layout().num_attributes();
  const StateBitmap child = full.WithFlipped(unit);
  const MaterializationPtr m = f.universe.MaterializeRecord(child);
  EXPECT_EQ(f.universe.StateFeatures(child),
            f.universe.StateFeatures(child, m->mask));
}

TEST(RowMaskPathTest, MaskDerivationExactOnNonMultipleOf64Universe) {
  // A handcrafted 70-row universe (not a multiple of 64) with null cells:
  // the word-level path must neither lose the last partial word's rows nor
  // resurrect tail garbage, and null cells must survive every reduction.
  Table t(Schema({{"target", ColumnType::kNumeric},
                  {"x", ColumnType::kNumeric},
                  {"y", ColumnType::kCategorical}}));
  for (int64_t r = 0; r < 70; ++r) {
    std::vector<Value> row;
    row.push_back(Value(static_cast<double>(r % 2)));
    row.push_back(r % 7 == 0 ? Value::Null()
                             : Value(static_cast<double>(r % 5)));
    row.push_back(r % 11 == 0
                      ? Value::Null()
                      : Value(std::string(
                            1, static_cast<char>('a' + static_cast<int>(r % 3)))));
    ASSERT_TRUE(t.AppendRow(std::move(row)).ok());
  }
  ASSERT_GT(t.NullFraction(), 0.0);

  SearchUniverse::Options opts;
  opts.protected_attributes = {"target"};
  opts.max_clusters = 3;
  auto uni = SearchUniverse::Build(std::move(t), opts);
  ASSERT_TRUE(uni.ok());
  const UnitLayout& layout = uni->layout();
  ASSERT_FALSE(layout.clusters.empty());

  const StateBitmap full = uni->FullBitmap();
  EXPECT_EQ(uni->CountRows(full), 70u);
  const MaterializationPtr parent = uni->MaterializeRecord(full);
  for (size_t u = 0; u < layout.num_units(); ++u) {
    if (layout.IsAttributeUnit(u) && !layout.attr_flippable[u]) continue;
    const StateBitmap child = full.WithFlipped(u);
    ExpectIncrementalMatchesFresh(*uni, *parent, child,
                                  "70-row reduct unit " + std::to_string(u));
    // And the relax edge back up from the reduced child.
    const MaterializationPtr reduced = uni->MaterializeRecord(child);
    ExpectIncrementalMatchesFresh(*uni, *reduced, full,
                                  "70-row augment unit " + std::to_string(u));
  }
}

// ------------------------------------------------------- Materialization LRU

MaterializationPtr DummyMaterialization(const std::string& tag) {
  auto m = std::make_shared<Materialization>();
  m->state = StateBitmap(tag.size(), true);
  return m;
}

TEST(MaterializationCacheTest, PutGetRoundtrip) {
  MaterializationCache cache(4);
  EXPECT_EQ(cache.Get("a"), nullptr);
  MaterializationPtr m = DummyMaterialization("a");
  cache.Put("a", m);
  EXPECT_EQ(cache.Get("a"), m);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(MaterializationCacheTest, EvictsLeastRecentlyUsed) {
  MaterializationCache cache(2);
  cache.Put("a", DummyMaterialization("a"));
  cache.Put("b", DummyMaterialization("b"));
  ASSERT_NE(cache.Get("a"), nullptr);  // Refreshes "a"; "b" is now LRU.
  cache.Put("c", DummyMaterialization("c"));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.Get("a"), nullptr);
  EXPECT_EQ(cache.Get("b"), nullptr);
  EXPECT_NE(cache.Get("c"), nullptr);
}

TEST(MaterializationCacheTest, ZeroCapacityDisablesCaching) {
  MaterializationCache cache(0);
  cache.Put("a", DummyMaterialization("a"));
  EXPECT_EQ(cache.Get("a"), nullptr);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(MaterializationCacheTest, PutRefreshesExistingKey) {
  MaterializationCache cache(2);
  cache.Put("a", DummyMaterialization("a"));
  cache.Put("b", DummyMaterialization("b"));
  MaterializationPtr fresh = DummyMaterialization("a2");
  cache.Put("a", fresh);  // Refresh: "b" becomes LRU.
  cache.Put("c", DummyMaterialization("c"));
  EXPECT_EQ(cache.Get("a"), fresh);
  EXPECT_EQ(cache.Get("b"), nullptr);
}

}  // namespace
}  // namespace modis
