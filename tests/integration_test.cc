/// End-to-end tests: full MODis pipelines over the synthetic lakes,
/// checking the paper's headline behaviours at test scale — skyline
/// datasets that beat the original on at least one measure, surrogate
/// search, and the graph task.

#include <gtest/gtest.h>

#include "baselines/baselines.h"
#include "core/algorithms.h"
#include "datagen/tasks.h"
#include "moo/pareto.h"

namespace modis {
namespace {

struct Pipeline {
  TabularBench bench;
  SearchUniverse universe;
  std::unique_ptr<SupervisedEvaluator> evaluator;

  static Pipeline Make(BenchTaskId id, double scale) {
    auto bench = MakeTabularBench(id, scale);
    EXPECT_TRUE(bench.ok());
    auto uni =
        SearchUniverse::Build(bench->universal, bench->universe_options);
    EXPECT_TRUE(uni.ok());
    Pipeline p{std::move(bench).value(), std::move(uni).value(), nullptr};
    p.evaluator = p.bench.MakeEvaluator();
    return p;
  }
};

/// Index of the measure named `name` in the task's measure vector.
size_t MeasureIndex(const SupervisedTask& task, const std::string& name) {
  for (size_t i = 0; i < task.measures.size(); ++i) {
    if (task.measures[i].name == name) return i;
  }
  ADD_FAILURE() << "no measure " << name;
  return 0;
}

TEST(IntegrationTest, HouseSkylineImprovesOverOriginal) {
  Pipeline p = Pipeline::Make(BenchTaskId::kHouse, 0.5);
  ExactOracle oracle(p.evaluator.get());

  auto original = oracle.Valuate(
      p.universe.FullBitmap().Signature(),
      p.universe.StateFeatures(p.universe.FullBitmap()),
      [&]() { return p.bench.universal; });
  ASSERT_TRUE(original.ok());

  ModisConfig cfg;
  cfg.epsilon = 0.2;
  cfg.max_states = 150;
  cfg.max_level = 3;
  auto result = RunApxModis(p.universe, &oracle, cfg);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->skyline.empty());

  // Best-f1 skyline table must beat the original's F1 (the corrupted
  // segments are removable).
  const size_t f1 = MeasureIndex(p.bench.task, "f1");
  double best = 0.0;
  for (const auto& e : result->skyline) {
    best = std::max(best, e.eval.raw[f1]);
  }
  EXPECT_GT(best, original->raw[f1]);
}

TEST(IntegrationTest, SurrogateSearchFindsComparableSkyline) {
  Pipeline p = Pipeline::Make(BenchTaskId::kHouse, 0.5);

  ModisConfig cfg;
  cfg.epsilon = 0.2;
  cfg.max_states = 150;
  cfg.max_level = 3;

  // Exact search.
  ExactOracle exact(p.evaluator.get());
  auto exact_run = RunApxModis(p.universe, &exact, cfg);
  ASSERT_TRUE(exact_run.ok());

  // Surrogate search.
  auto eval2 = p.bench.MakeEvaluator();
  SurrogateOptions sopt;
  sopt.bootstrap_budget = 20;
  MoGbmOracle surrogate(eval2.get(), sopt);
  auto surr_run = RunApxModis(p.universe, &surrogate, cfg);
  ASSERT_TRUE(surr_run.ok());
  ASSERT_FALSE(surr_run->skyline.empty());
  EXPECT_GT(surrogate.stats().surrogate_evals, 0u);
  // The surrogate must have avoided most exact valuations.
  EXPECT_LT(surrogate.stats().exact_evals, exact.stats().exact_evals);
}

TEST(IntegrationTest, ModisBeatsFeatureSelectionOnAccuracyMeasure) {
  Pipeline p = Pipeline::Make(BenchTaskId::kHouse, 0.5);
  ExactOracle oracle(p.evaluator.get());

  ModisConfig cfg;
  cfg.epsilon = 0.2;
  cfg.max_states = 150;
  cfg.max_level = 3;
  auto modis_run = RunNoBiModis(p.universe, &oracle, cfg);
  ASSERT_TRUE(modis_run.ok());
  ASSERT_FALSE(modis_run->skyline.empty());

  auto sksfm = RunSkSfm(p.bench.universal, p.evaluator.get(),
                        p.bench.model.get());
  ASSERT_TRUE(sksfm.ok());

  const size_t f1 = MeasureIndex(p.bench.task, "f1");
  double best = 0.0;
  for (const auto& e : modis_run->skyline) {
    best = std::max(best, e.eval.raw[f1]);
  }
  EXPECT_GT(best, sksfm->eval.raw[f1]);
}

TEST(IntegrationTest, RegressionTaskSkylineReducesError) {
  Pipeline p = Pipeline::Make(BenchTaskId::kAvocado, 0.25);
  ExactOracle oracle(p.evaluator.get());

  auto original = oracle.Valuate(
      p.universe.FullBitmap().Signature(),
      p.universe.StateFeatures(p.universe.FullBitmap()),
      [&]() { return p.bench.universal; });
  ASSERT_TRUE(original.ok());

  ModisConfig cfg;
  cfg.epsilon = 0.15;
  cfg.max_states = 120;
  cfg.max_level = 3;
  auto result = RunNoBiModis(p.universe, &oracle, cfg);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->skyline.empty());

  const size_t mse = MeasureIndex(p.bench.task, "mse");
  double best = 1e18;
  for (const auto& e : result->skyline) {
    best = std::min(best, e.eval.raw[mse]);
  }
  EXPECT_LT(best, original->raw[mse]);
}

TEST(IntegrationTest, GraphTaskSkylineImprovesPrecision) {
  auto bench = MakeGraphBench(0.6);
  ASSERT_TRUE(bench.ok());
  auto evaluator = bench->MakeEvaluator();

  SearchUniverse::Options opts;
  opts.protected_attributes = {"user", "item"};
  opts.max_clusters = 4;
  auto uni = SearchUniverse::Build(bench->lake.edge_table, opts);
  ASSERT_TRUE(uni.ok());

  ExactOracle oracle(evaluator.get());
  auto original = oracle.Valuate(
      uni->FullBitmap().Signature(), uni->StateFeatures(uni->FullBitmap()),
      [&]() { return bench->lake.edge_table; });
  ASSERT_TRUE(original.ok());

  ModisConfig cfg;
  cfg.epsilon = 0.2;
  cfg.max_states = 60;
  cfg.max_level = 3;
  auto result = RunNoBiModis(*uni, &oracle, cfg);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->skyline.empty());

  // p@5 is measure 0; removing low-affinity noise edges should improve it.
  double best = 0.0;
  for (const auto& e : result->skyline) {
    best = std::max(best, e.eval.raw[0]);
  }
  EXPECT_GE(best, original->raw[0]);
}

TEST(IntegrationTest, CaseStudyBoundsAreHonored) {
  // Case 2: every skyline dataset must satisfy acc >= 0.85 (normalized
  // 1-acc <= 0.15).
  Pipeline p = Pipeline::Make(BenchTaskId::kFeaturePool, 0.5);
  ExactOracle oracle(p.evaluator.get());
  ModisConfig cfg;
  cfg.epsilon = 0.2;
  cfg.max_states = 120;
  cfg.max_level = 3;
  auto result = RunNoBiModis(p.universe, &oracle, cfg);
  ASSERT_TRUE(result.ok());
  const size_t acc = MeasureIndex(p.bench.task, "acc");
  for (const auto& e : result->skyline) {
    EXPECT_GE(e.eval.raw[acc], 0.85 - 1e-9);
  }
}

TEST(IntegrationTest, DivModisProducesDiverseSkyline) {
  Pipeline p = Pipeline::Make(BenchTaskId::kHouse, 0.5);
  ExactOracle oracle(p.evaluator.get());
  ModisConfig cfg;
  cfg.epsilon = 0.25;
  cfg.max_states = 150;
  cfg.max_level = 3;
  cfg.diversify_k = 4;
  auto result = RunDivModis(p.universe, &oracle, cfg);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->skyline.size(), 4u);
  ASSERT_FALSE(result->skyline.empty());
  // Members must differ in their bitmaps.
  for (size_t i = 0; i < result->skyline.size(); ++i) {
    for (size_t j = i + 1; j < result->skyline.size(); ++j) {
      EXPECT_FALSE(result->skyline[i].state == result->skyline[j].state);
    }
  }
}

}  // namespace
}  // namespace modis
