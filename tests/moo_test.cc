#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "moo/correlation.h"
#include "moo/diversity.h"
#include "moo/pareto.h"

namespace modis {
namespace {

// -------------------------------------------------------------- Dominance

TEST(DominanceTest, BasicCases) {
  EXPECT_TRUE(Dominates({0.1, 0.2}, {0.2, 0.3}));
  EXPECT_TRUE(Dominates({0.1, 0.3}, {0.2, 0.3}));
  EXPECT_FALSE(Dominates({0.1, 0.4}, {0.2, 0.3}));  // Incomparable.
  EXPECT_FALSE(Dominates({0.2, 0.3}, {0.2, 0.3}));  // Equal: not strict.
}

TEST(DominanceTest, IsIrreflexiveAndAsymmetric) {
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    PerfVector a{rng.Uniform(), rng.Uniform(), rng.Uniform()};
    PerfVector b{rng.Uniform(), rng.Uniform(), rng.Uniform()};
    EXPECT_FALSE(Dominates(a, a));
    EXPECT_FALSE(Dominates(a, b) && Dominates(b, a));
  }
}

TEST(DominanceTest, IsTransitive) {
  Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    PerfVector a{rng.Uniform(), rng.Uniform()};
    PerfVector b{rng.Uniform(), rng.Uniform()};
    PerfVector c{rng.Uniform(), rng.Uniform()};
    if (Dominates(a, b) && Dominates(b, c)) {
      EXPECT_TRUE(Dominates(a, c));
    }
  }
}

TEST(EpsilonDominanceTest, RelaxesExactDominance) {
  // Exact dominance implies ε-dominance for any ε >= 0.
  Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    PerfVector a{rng.Uniform(0.01, 1), rng.Uniform(0.01, 1)};
    PerfVector b{rng.Uniform(0.01, 1), rng.Uniform(0.01, 1)};
    if (Dominates(a, b)) {
      EXPECT_TRUE(EpsilonDominates(a, b, 0.0));
      EXPECT_TRUE(EpsilonDominates(a, b, 0.3));
    }
  }
}

TEST(EpsilonDominanceTest, RequiresDecisiveMeasure) {
  // a is within (1+eps) on both but better on neither -> no ε-dominance.
  EXPECT_FALSE(EpsilonDominates({0.11, 0.11}, {0.1, 0.1}, 0.3));
  // Better on one: yes.
  EXPECT_TRUE(EpsilonDominates({0.09, 0.11}, {0.1, 0.1}, 0.3));
  // Outside the (1+eps) band: no.
  EXPECT_FALSE(EpsilonDominates({0.09, 0.2}, {0.1, 0.1}, 0.3));
}

TEST(EpsilonDominanceTest, SelfEpsilonDominates) {
  // t'.p <= t.p holds with equality on all measures.
  PerfVector a{0.5, 0.2};
  EXPECT_TRUE(EpsilonDominates(a, a, 0.1));
}

// ------------------------------------------------------------ Pareto front

TEST(ParetoTest, SimpleFront) {
  std::vector<PerfVector> pts{{0.1, 0.9}, {0.9, 0.1}, {0.5, 0.5}, {0.6, 0.6}};
  auto front = ParetoFrontNaive(pts);
  EXPECT_EQ(front, (std::vector<size_t>{0, 1, 2}));
}

TEST(ParetoTest, DuplicatesKeptOnce) {
  std::vector<PerfVector> pts{{0.5, 0.5}, {0.5, 0.5}, {0.9, 0.9}};
  auto front = ParetoFrontNaive(pts);
  EXPECT_EQ(front, (std::vector<size_t>{0}));
}

TEST(ParetoTest, FrontMembersAreMutuallyNonDominated) {
  Rng rng(4);
  std::vector<PerfVector> pts;
  for (int i = 0; i < 100; ++i) {
    pts.push_back({rng.Uniform(), rng.Uniform(), rng.Uniform()});
  }
  auto front = ParetoFrontNaive(pts);
  for (size_t i : front) {
    for (size_t j : front) {
      if (i != j) {
        EXPECT_FALSE(Dominates(pts[i], pts[j]));
      }
    }
  }
  // And everything else is dominated by some front member.
  std::vector<bool> in_front(pts.size(), false);
  for (size_t i : front) in_front[i] = true;
  for (size_t i = 0; i < pts.size(); ++i) {
    if (in_front[i]) continue;
    bool dominated_or_dup = false;
    for (size_t j : front) {
      if (Dominates(pts[j], pts[i]) || pts[j] == pts[i]) {
        dominated_or_dup = true;
        break;
      }
    }
    EXPECT_TRUE(dominated_or_dup) << "point " << i;
  }
}

class KungEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(KungEquivalenceTest, KungMatchesNaive) {
  const auto [n, dims] = GetParam();
  Rng rng(100 + n * 7 + dims);
  std::vector<PerfVector> pts;
  for (int i = 0; i < n; ++i) {
    PerfVector p;
    for (int d = 0; d < dims; ++d) p.push_back(rng.Uniform(0.01, 1.0));
    pts.push_back(std::move(p));
  }
  auto naive = ParetoFrontNaive(pts);
  auto kung = ParetoFrontKung(pts);
  std::sort(naive.begin(), naive.end());
  EXPECT_EQ(naive, kung);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, KungEquivalenceTest,
    ::testing::Combine(::testing::Values(1, 5, 20, 100, 300),
                       ::testing::Values(2, 3, 4, 5)));

// ---------------------------------------------------------------- Grid

TEST(GridPositionTest, FloorsLogRatio) {
  // perf/lower = 1 -> cell 0; = (1+eps) -> cell 1 (floor of 1.0).
  const double eps = 0.5;
  auto pos = GridPosition({0.01, 0.5}, {0.01, 0.01}, eps);
  ASSERT_EQ(pos.size(), 1u);  // Last measure excluded.
  EXPECT_EQ(pos[0], 0);
  auto pos2 = GridPosition({0.01 * 1.5 * 1.5, 0.5}, {0.01, 0.01}, eps);
  EXPECT_EQ(pos2[0], 2);
}

TEST(GridPositionTest, SameCellImpliesEpsilonClose) {
  Rng rng(5);
  const double eps = 0.3;
  const std::vector<double> lb{0.01, 0.01, 0.01};
  for (int i = 0; i < 500; ++i) {
    PerfVector a{rng.Uniform(0.01, 1), rng.Uniform(0.01, 1),
                 rng.Uniform(0.01, 1)};
    PerfVector b{rng.Uniform(0.01, 1), rng.Uniform(0.01, 1),
                 rng.Uniform(0.01, 1)};
    if (GridPosition(a, lb, eps) == GridPosition(b, lb, eps)) {
      // Cells are (1+eps)-wide: same cell means each non-decisive measure
      // is within a factor (1+eps) of the other.
      for (size_t d = 0; d + 1 < a.size(); ++d) {
        EXPECT_LE(a[d], (1 + eps) * b[d] * (1 + 1e-9));
        EXPECT_LE(b[d], (1 + eps) * a[d] * (1 + 1e-9));
      }
    }
  }
}

TEST(GridPositionTest, ClampsBelowLowerBound) {
  auto pos = GridPosition({0.001, 0.5}, {0.01, 0.01}, 0.3);
  EXPECT_EQ(pos[0], 0);  // Clamped to p_l.
}

TEST(EpsilonCoverTest, DetectsCoverAndGaps) {
  // A kept point trivially ε-covers anything it is no worse than; a gap
  // needs an uncovered point that is *better* somewhere.
  std::vector<PerfVector> all{{0.5, 0.5}, {0.1, 0.9}};
  std::vector<PerfVector> kept{{0.5, 0.5}};
  EXPECT_FALSE(IsEpsilonCover(all, kept, 0.1));  // {0.1,0.9} uncovered.
  kept.push_back({0.1, 0.9});
  EXPECT_TRUE(IsEpsilonCover(all, kept, 0.1));
  // Smaller points cover larger ones for any ε.
  EXPECT_TRUE(IsEpsilonCover({{0.5, 0.5}}, {{0.1, 0.1}}, 0.0));
}

// ---------------------------------------------------------------- Spearman

TEST(SpearmanTest, MonotoneRelationsAreExtreme) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> inc{2, 4, 6, 8, 10};
  std::vector<double> dec{5, 4, 3, 2, 1};
  EXPECT_NEAR(SpearmanCorrelation(x, inc), 1.0, 1e-12);
  EXPECT_NEAR(SpearmanCorrelation(x, dec), -1.0, 1e-12);
}

TEST(SpearmanTest, MonotoneNonlinearStillPerfect) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y{1, 8, 27, 64, 125};
  EXPECT_NEAR(SpearmanCorrelation(x, y), 1.0, 1e-12);
}

TEST(SpearmanTest, ConstantSampleIsZero) {
  EXPECT_DOUBLE_EQ(SpearmanCorrelation({1, 1, 1}, {1, 2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(SpearmanCorrelation({1.0}, {2.0}), 0.0);
}

TEST(SpearmanTest, IndependentNearZero) {
  Rng rng(6);
  std::vector<double> a(2000), b(2000);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.Normal();
    b[i] = rng.Normal();
  }
  EXPECT_NEAR(SpearmanCorrelation(a, b), 0.0, 0.06);
}

TEST(CorrelationGraphTest, DetectsStrongPairs) {
  CorrelationGraph g(3, 0.8);
  std::vector<PerfVector> tests;
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    const double z = rng.Uniform();
    tests.push_back({z, 1.0 - z, rng.Uniform()});
  }
  g.Update(tests);
  EXPECT_TRUE(g.StronglyCorrelated(0, 1));
  EXPECT_NEAR(g.Corr(0, 1), -1.0, 1e-9);
  EXPECT_FALSE(g.StronglyCorrelated(0, 2));
  auto partners = g.PartnersOf(0);
  ASSERT_EQ(partners.size(), 1u);
  EXPECT_EQ(partners[0], 1u);
}

TEST(CorrelationGraphTest, NoEvidenceMeansNoEdges) {
  CorrelationGraph g(2, 0.5);
  g.Update({{0.1, 0.2}});  // Fewer than 3 tests.
  EXPECT_FALSE(g.StronglyCorrelated(0, 1));
  EXPECT_DOUBLE_EQ(g.Corr(0, 1), 0.0);
}

// ---------------------------------------------------------------- Diversity

DiversityItem Item(std::vector<double> bitmap, PerfVector perf) {
  return {std::move(bitmap), std::move(perf)};
}

TEST(DiversityTest, DistanceBounds) {
  DiversityItem a = Item({1, 0, 1}, {0.1, 0.2});
  DiversityItem b = Item({0, 1, 0}, {0.9, 0.8});
  const double d = DiversityDistance(a, b, 0.5, 2.0);
  EXPECT_GT(d, 0.0);
  EXPECT_LE(d, 1.0);
  EXPECT_NEAR(DiversityDistance(a, a, 0.5, 2.0), 0.0, 1e-12);
}

TEST(DiversityTest, AlphaInterpolates) {
  DiversityItem a = Item({1, 0}, {0.5, 0.5});
  DiversityItem b = Item({0, 1}, {0.5, 0.5});  // Same perf, disjoint bits.
  EXPECT_DOUBLE_EQ(DiversityDistance(a, b, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(DiversityDistance(a, b, 1.0, 1.0), 0.5);
}

TEST(DiversityTest, ScoreIsPairwiseSum) {
  std::vector<DiversityItem> items{Item({1, 0}, {0.1, 0.1}),
                                   Item({0, 1}, {0.9, 0.9}),
                                   Item({1, 1}, {0.5, 0.5})};
  const double euc_max = 2.0;
  const double d01 = DiversityDistance(items[0], items[1], 0.5, euc_max);
  const double d02 = DiversityDistance(items[0], items[2], 0.5, euc_max);
  const double d12 = DiversityDistance(items[1], items[2], 0.5, euc_max);
  EXPECT_NEAR(DiversityScore(items, {0, 1, 2}, 0.5, euc_max),
              d01 + d02 + d12, 1e-12);
}

TEST(DiversityTest, MonotoneUnderSupersets) {
  // div(Y) <= div(X) for Y ⊆ X (the paper's monotonicity claim).
  std::vector<DiversityItem> items{
      Item({1, 0, 0}, {0.1, 0.9}), Item({0, 1, 0}, {0.5, 0.5}),
      Item({0, 0, 1}, {0.9, 0.1}), Item({1, 1, 0}, {0.3, 0.7})};
  const double sub = DiversityScore(items, {0, 1}, 0.5, 2.0);
  const double super = DiversityScore(items, {0, 1, 2}, 0.5, 2.0);
  EXPECT_LE(sub, super);
}

TEST(DiversifyGreedyTest, ReturnsAllWhenFewer) {
  std::vector<DiversityItem> items{Item({1}, {0.1}), Item({0}, {0.9})};
  Rng rng(8);
  auto kept = DiversifyGreedy(items, 5, 0.5, 1.0, &rng);
  EXPECT_EQ(kept.size(), 2u);
}

TEST(DiversifyGreedyTest, RespectsKAndImprovesOverRandom) {
  Rng data_rng(9);
  std::vector<DiversityItem> items;
  for (int i = 0; i < 30; ++i) {
    items.push_back(Item({data_rng.Uniform(), data_rng.Uniform()},
                         {data_rng.Uniform(0.01, 1), data_rng.Uniform(0.01, 1)}));
  }
  Rng rng(10);
  auto kept = DiversifyGreedy(items, 5, 0.5, 1.5, &rng);
  EXPECT_EQ(kept.size(), 5u);
  const double greedy_score = DiversityScore(items, kept, 0.5, 1.5);
  // Greedy should beat the average random 5-subset.
  Rng mc(11);
  double avg = 0.0;
  const int trials = 50;
  for (int t = 0; t < trials; ++t) {
    auto sub = mc.SampleWithoutReplacement(items.size(), 5);
    avg += DiversityScore(items, sub, 0.5, 1.5);
  }
  avg /= trials;
  EXPECT_GT(greedy_score, avg);
}

TEST(DiversifyGreedyTest, IndicesValidAndDistinct) {
  Rng data_rng(12);
  std::vector<DiversityItem> items;
  for (int i = 0; i < 12; ++i) {
    items.push_back(Item({data_rng.Uniform()}, {data_rng.Uniform(0.01, 1)}));
  }
  Rng rng(13);
  auto kept = DiversifyGreedy(items, 4, 0.3, 1.0, &rng);
  std::set<size_t> uniq(kept.begin(), kept.end());
  EXPECT_EQ(uniq.size(), kept.size());
  for (size_t i : kept) EXPECT_LT(i, items.size());
}

TEST(MaxEuclideanDistanceTest, FindsMaxAndFloors) {
  EXPECT_NEAR(MaxEuclideanDistance({{0, 0}, {3, 4}, {1, 1}}), 5.0, 1e-12);
  EXPECT_GT(MaxEuclideanDistance({}), 0.0);  // Positive floor.
  EXPECT_GT(MaxEuclideanDistance({{1, 1}}), 0.0);
}

}  // namespace
}  // namespace modis
