#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/algorithms.h"
#include "core/engine.h"
#include "core/universe.h"
#include "datagen/tasks.h"
#include "moo/pareto.h"
#include "ops/operators.h"

namespace modis {
namespace {

// ---------------------------------------------------------------- Bitmap

TEST(StateBitmapTest, FlipAndSignature) {
  StateBitmap s(4, true);
  EXPECT_EQ(s.Signature(), "1111");
  EXPECT_EQ(s.PopCount(), 4u);
  StateBitmap t = s.WithFlipped(1);
  EXPECT_EQ(t.Signature(), "1011");
  EXPECT_EQ(s.Signature(), "1111");  // Original untouched.
  EXPECT_EQ(t.PopCount(), 3u);
  EXPECT_FALSE(s == t);
  EXPECT_TRUE(t == s.WithFlipped(1));
}

TEST(StateBitmapTest, FeaturesMatchBits) {
  StateBitmap s(3, false);
  s.Set(2, true);
  EXPECT_EQ(s.Features(), (std::vector<double>{0.0, 0.0, 1.0}));
}

// ---------------------------------------------------------------- Universe

struct UniverseFixture {
  TabularBench bench;
  SearchUniverse universe;

  static UniverseFixture Make() {
    auto bench = MakeTabularBench(BenchTaskId::kHouse, 0.4);
    EXPECT_TRUE(bench.ok());
    auto uni = SearchUniverse::Build(bench->universal,
                                     bench->universe_options);
    EXPECT_TRUE(uni.ok());
    return {std::move(bench).value(), std::move(uni).value()};
  }
};

TEST(UniverseTest, LayoutProtectsTargetAndKey) {
  auto f = UniverseFixture::Make();
  const UnitLayout& layout = f.universe.layout();
  bool target_protected = false, key_protected = false;
  for (size_t a = 0; a < layout.num_attributes(); ++a) {
    if (layout.attributes[a] == f.bench.task.target) {
      target_protected = !layout.attr_flippable[a];
    }
    if (layout.attributes[a] == f.bench.lake.key()) {
      key_protected = !layout.attr_flippable[a];
    }
  }
  EXPECT_TRUE(target_protected);
  EXPECT_TRUE(key_protected);
  // No cluster units for protected attributes.
  for (const auto& cu : layout.clusters) {
    EXPECT_TRUE(layout.attr_flippable[cu.attr_index]);
  }
}

TEST(UniverseTest, FullBitmapMaterializesUniversal) {
  auto f = UniverseFixture::Make();
  Table full = f.universe.Materialize(f.universe.FullBitmap());
  EXPECT_EQ(full.num_rows(), f.bench.universal.num_rows());
  EXPECT_EQ(full.num_cols(), f.bench.universal.num_cols());
}

TEST(UniverseTest, AttributeFlipDropsColumn) {
  auto f = UniverseFixture::Make();
  const UnitLayout& layout = f.universe.layout();
  size_t flippable = layout.num_attributes();
  for (size_t a = 0; a < layout.num_attributes(); ++a) {
    if (layout.attr_flippable[a]) {
      flippable = a;
      break;
    }
  }
  ASSERT_LT(flippable, layout.num_attributes());
  StateBitmap s = f.universe.FullBitmap().WithFlipped(flippable);
  Table t = f.universe.Materialize(s);
  EXPECT_EQ(t.num_cols(), f.bench.universal.num_cols() - 1);
  EXPECT_FALSE(t.schema().HasField(layout.attributes[flippable]));
  EXPECT_EQ(t.num_rows(), f.bench.universal.num_rows());
}

TEST(UniverseTest, ClusterFlipMatchesReductOperator) {
  // Materializing with one cluster bit off must equal applying the Reduct
  // operator with that cluster's literal to the universal table.
  auto f = UniverseFixture::Make();
  const UnitLayout& layout = f.universe.layout();
  ASSERT_FALSE(layout.clusters.empty());
  const size_t unit = layout.num_attributes();  // First cluster unit.
  const Literal& literal = layout.clusters[0].literal;

  StateBitmap s = f.universe.FullBitmap().WithFlipped(unit);
  Table via_bitmap = f.universe.Materialize(s);
  auto via_reduct = Reduct(f.bench.universal, literal);
  ASSERT_TRUE(via_reduct.ok());
  EXPECT_EQ(via_bitmap.num_rows(), via_reduct->num_rows());
  EXPECT_EQ(via_bitmap.num_cols(), via_reduct->num_cols());
  // Spot-check the first rows cell by cell.
  for (size_t r = 0; r < std::min<size_t>(20, via_bitmap.num_rows()); ++r) {
    for (size_t c = 0; c < via_bitmap.num_cols(); ++c) {
      EXPECT_EQ(via_bitmap.At(r, c), via_reduct->At(r, c));
    }
  }
}

TEST(UniverseTest, CountRowsAgreesWithMaterialize) {
  auto f = UniverseFixture::Make();
  StateBitmap s = f.universe.FullBitmap();
  // Flip a few cluster bits.
  const size_t base = f.universe.layout().num_attributes();
  for (size_t i = 0; i < 3 && base + i < s.size(); ++i) {
    s = s.WithFlipped(base + i);
  }
  EXPECT_EQ(f.universe.CountRows(s), f.universe.Materialize(s).num_rows());
  EXPECT_NEAR(f.universe.RowFraction(s),
              static_cast<double>(f.universe.CountRows(s)) /
                  f.bench.universal.num_rows(),
              1e-12);
}

TEST(UniverseTest, BackwardBitmapIsMinimalTrainable) {
  auto f = UniverseFixture::Make();
  StateBitmap back = f.universe.BackwardBitmap();
  Table t = f.universe.Materialize(back);
  // Target, key, and one seed feature at least.
  EXPECT_GE(t.num_cols(), 3u);
  EXPECT_LT(t.num_cols(), f.bench.universal.num_cols());
  EXPECT_TRUE(t.schema().HasField(f.bench.task.target));
  // All rows present (cluster bits all on).
  EXPECT_EQ(t.num_rows(), f.bench.universal.num_rows());
}

TEST(UniverseTest, StateFeaturesAppendFractions) {
  auto f = UniverseFixture::Make();
  auto features = f.universe.StateFeatures(f.universe.FullBitmap());
  EXPECT_EQ(features.size(), f.universe.layout().num_units() + 2);
  EXPECT_DOUBLE_EQ(features[features.size() - 2], 1.0);  // Row fraction.
  EXPECT_DOUBLE_EQ(features.back(), 1.0);                // Column fraction.
}

TEST(UniverseTest, ProtectedAttributeMustExist) {
  auto bench = MakeTabularBench(BenchTaskId::kHouse, 0.4);
  ASSERT_TRUE(bench.ok());
  SearchUniverse::Options opts;
  opts.protected_attributes = {"no_such_column"};
  EXPECT_FALSE(SearchUniverse::Build(bench->universal, opts).ok());
}

// ---------------------------------------------------------------- Engine

ModisConfig SmallConfig() {
  ModisConfig cfg;
  cfg.epsilon = 0.25;
  cfg.max_states = 80;
  cfg.max_level = 3;
  return cfg;
}

TEST(EngineTest, SkylineIsMutuallyNonDominated) {
  auto f = UniverseFixture::Make();
  auto evaluator = f.bench.MakeEvaluator();
  ExactOracle oracle(evaluator.get());
  auto result = RunApxModis(f.universe, &oracle, SmallConfig());
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->skyline.empty());
  for (const auto& a : result->skyline) {
    for (const auto& b : result->skyline) {
      if (&a == &b) continue;
      EXPECT_FALSE(Dominates(a.eval.normalized, b.eval.normalized));
    }
  }
}

TEST(EngineTest, RespectsValuationBudget) {
  auto f = UniverseFixture::Make();
  auto evaluator = f.bench.MakeEvaluator();
  ExactOracle oracle(evaluator.get());
  ModisConfig cfg = SmallConfig();
  cfg.max_states = 25;
  auto result = RunApxModis(f.universe, &oracle, cfg);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->valuated_states, 25u);
}

TEST(EngineTest, RespectsMaxLevel) {
  auto f = UniverseFixture::Make();
  auto evaluator = f.bench.MakeEvaluator();
  ExactOracle oracle(evaluator.get());
  ModisConfig cfg = SmallConfig();
  cfg.max_level = 1;
  cfg.max_states = 10000;
  auto result = RunApxModis(f.universe, &oracle, cfg);
  ASSERT_TRUE(result.ok());
  for (const auto& e : result->skyline) EXPECT_LE(e.level, 1);
}

TEST(EngineTest, SkylineEpsilonCoversValuatedStates) {
  // Lemma 2: every valuated in-bounds state is ε-dominated by a skyline
  // member.
  auto f = UniverseFixture::Make();
  auto evaluator = f.bench.MakeEvaluator();
  ExactOracle oracle(evaluator.get());
  ModisConfig cfg = SmallConfig();
  cfg.max_states = 60;
  auto result = RunApxModis(f.universe, &oracle, cfg);
  ASSERT_TRUE(result.ok());

  std::vector<PerfVector> kept;
  for (const auto& e : result->skyline) kept.push_back(e.eval.normalized);
  const auto upper = UpperBounds(oracle.measures());
  // train_time is wall-clock and jitters between identical runs; exclude
  // it from the strict cover check by relaxing epsilon slightly.
  const double check_eps = cfg.epsilon + 0.25;
  for (const auto& record : oracle.store().records()) {
    bool in_bounds = true;
    for (size_t j = 0; j < upper.size(); ++j) {
      if (record.eval.normalized[j] > upper[j] + 1e-12) in_bounds = false;
    }
    if (!in_bounds) continue;
    bool covered = false;
    for (const auto& k : kept) {
      if (EpsilonDominates(k, record.eval.normalized, check_eps)) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << record.key;
  }
}

TEST(EngineTest, BidirectionalValuatesBackwardStates) {
  auto f = UniverseFixture::Make();
  auto evaluator = f.bench.MakeEvaluator();
  ExactOracle oracle(evaluator.get());
  auto result = RunNoBiModis(f.universe, &oracle, SmallConfig());
  ASSERT_TRUE(result.ok());
  // Some skyline states should have few columns (backward side) or the
  // backward seed must at least have been valuated: look for a record with
  // low column fraction.
  bool saw_small = false;
  for (const auto& r : oracle.store().records()) {
    if (r.features.back() < 0.5) saw_small = true;
  }
  EXPECT_TRUE(saw_small);
}

TEST(EngineTest, PruningNeverBreaksSkylineQuality) {
  // BiMODis (with pruning) must still produce a skyline that ε-covers the
  // NOBiMODis skyline within combined slack.
  auto f = UniverseFixture::Make();
  ModisConfig cfg = SmallConfig();

  auto eval1 = f.bench.MakeEvaluator();
  ExactOracle oracle1(eval1.get());
  auto no_prune = RunNoBiModis(f.universe, &oracle1, cfg);
  ASSERT_TRUE(no_prune.ok());

  auto eval2 = f.bench.MakeEvaluator();
  ExactOracle oracle2(eval2.get());
  auto pruned = RunBiModis(f.universe, &oracle2, cfg);
  ASSERT_TRUE(pruned.ok());

  ASSERT_FALSE(pruned->skyline.empty());
  EXPECT_LE(pruned->valuated_states, no_prune->valuated_states);
}

TEST(EngineTest, DivModisRespectsK) {
  auto f = UniverseFixture::Make();
  auto evaluator = f.bench.MakeEvaluator();
  ExactOracle oracle(evaluator.get());
  ModisConfig cfg = SmallConfig();
  cfg.diversify_k = 3;
  auto result = RunDivModis(f.universe, &oracle, cfg);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->skyline.size(), 3u);
  EXPECT_FALSE(result->skyline.empty());
}

TEST(EngineTest, ExtremeEpsilonCollapsesGrid) {
  // A huge ε lumps all non-decisive measures into one grid cell, so the
  // kept set cannot out-size a fine grid's (with the same exploration
  // order under the exact oracle's determinism).
  auto f = UniverseFixture::Make();
  ModisConfig coarse = SmallConfig();
  coarse.epsilon = 50.0;
  ModisConfig fine = SmallConfig();
  fine.epsilon = 0.01;

  auto ev1 = f.bench.MakeEvaluator();
  ExactOracle o1(ev1.get());
  auto r_coarse = RunApxModis(f.universe, &o1, coarse);
  auto ev2 = f.bench.MakeEvaluator();
  ExactOracle o2(ev2.get());
  auto r_fine = RunApxModis(f.universe, &o2, fine);
  ASSERT_TRUE(r_coarse.ok() && r_fine.ok());
  EXPECT_GE(r_fine->skyline.size(), r_coarse->skyline.size());
  // With one grid cell per decisive comparison, the coarse skyline is a
  // handful at most.
  EXPECT_LE(r_coarse->skyline.size(), 3u);
}

TEST(ExactSkylineTest, MatchesParetoOverValuatedStates) {
  auto f = UniverseFixture::Make();
  auto evaluator = f.bench.MakeEvaluator();
  ExactOracle oracle(evaluator.get());
  ModisConfig cfg = SmallConfig();
  cfg.max_states = 40;
  auto result = RunExactSkyline(f.universe, &oracle, cfg);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->skyline.empty());
  for (const auto& a : result->skyline) {
    for (const auto& b : result->skyline) {
      if (&a == &b) continue;
      EXPECT_FALSE(Dominates(a.eval.normalized, b.eval.normalized));
    }
  }
}

TEST(EngineTest, ApxSkylineEntriesComeFromValuatedStates) {
  auto f = UniverseFixture::Make();
  auto evaluator = f.bench.MakeEvaluator();
  ExactOracle oracle(evaluator.get());
  auto result = RunApxModis(f.universe, &oracle, SmallConfig());
  ASSERT_TRUE(result.ok());
  for (const auto& e : result->skyline) {
    EXPECT_NE(oracle.store().Find(e.state.Signature()), nullptr);
    EXPECT_GT(e.rows, 0u);
    EXPECT_GT(e.cols, 0u);
  }
}

TEST(EngineTest, ThreadCountDoesNotChangeTheSkyline) {
  // The batched valuation pipeline plans and commits on the caller thread
  // in a fixed order, so num_threads=1 and num_threads=4 must produce the
  // same skyline grid bit for bit. Runs the T1 (movie) task with its
  // wall-clock measure removed — "train_time" carries scheduling noise by
  // definition and would make any cross-run comparison flaky.
  auto bench = MakeTabularBench(BenchTaskId::kMovie, 0.3);
  ASSERT_TRUE(bench.ok());
  auto universe =
      SearchUniverse::Build(bench->universal, bench->universe_options);
  ASSERT_TRUE(universe.ok());

  SupervisedTask task = bench->task;
  task.measures.clear();
  for (const MeasureSpec& m : bench->task.measures) {
    if (m.name != "train_time") task.measures.push_back(m);
  }
  ASSERT_GE(task.measures.size(), 2u);

  auto run = [&](size_t num_threads) {
    SupervisedEvaluator evaluator(task, bench->model->Clone());
    MoGbmOracle oracle(&evaluator);
    ModisConfig cfg;
    cfg.epsilon = 0.25;
    cfg.max_states = 120;
    cfg.max_level = 4;
    cfg.num_threads = num_threads;
    auto result = RunBiModis(*universe, &oracle, cfg);
    EXPECT_TRUE(result.ok());
    return std::move(result).value();
  };

  ModisResult serial = run(1);
  ModisResult threaded = run(4);

  EXPECT_EQ(serial.valuated_states, threaded.valuated_states);
  EXPECT_EQ(serial.generated_states, threaded.generated_states);
  EXPECT_EQ(serial.pruned_states, threaded.pruned_states);
  EXPECT_EQ(serial.oracle_stats.exact_evals,
            threaded.oracle_stats.exact_evals);
  EXPECT_EQ(serial.oracle_stats.surrogate_evals,
            threaded.oracle_stats.surrogate_evals);

  ASSERT_EQ(serial.skyline.size(), threaded.skyline.size());
  ASSERT_FALSE(serial.skyline.empty());
  auto by_signature = [](const SkylineEntry& a, const SkylineEntry& b) {
    return a.state.Signature() < b.state.Signature();
  };
  std::sort(serial.skyline.begin(), serial.skyline.end(), by_signature);
  std::sort(threaded.skyline.begin(), threaded.skyline.end(), by_signature);
  for (size_t i = 0; i < serial.skyline.size(); ++i) {
    const SkylineEntry& a = serial.skyline[i];
    const SkylineEntry& b = threaded.skyline[i];
    EXPECT_EQ(a.state.Signature(), b.state.Signature());
    EXPECT_EQ(a.level, b.level);
    EXPECT_EQ(a.rows, b.rows);
    EXPECT_EQ(a.cols, b.cols);
    ASSERT_EQ(a.eval.normalized.size(), b.eval.normalized.size());
    for (size_t j = 0; j < a.eval.normalized.size(); ++j) {
      EXPECT_DOUBLE_EQ(a.eval.normalized[j], b.eval.normalized[j]);
      EXPECT_DOUBLE_EQ(a.eval.raw[j], b.eval.raw[j]);
    }
  }
}

class EpsilonSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(EpsilonSweepTest, SkylineNonEmptyAndNonDominated) {
  auto f = UniverseFixture::Make();
  auto evaluator = f.bench.MakeEvaluator();
  ExactOracle oracle(evaluator.get());
  ModisConfig cfg = SmallConfig();
  cfg.epsilon = GetParam();
  auto result = RunApxModis(f.universe, &oracle, cfg);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->skyline.empty());
  for (const auto& a : result->skyline) {
    for (const auto& b : result->skyline) {
      if (&a != &b) {
        EXPECT_FALSE(Dominates(a.eval.normalized, b.eval.normalized));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Epsilons, EpsilonSweepTest,
                         ::testing::Values(0.05, 0.1, 0.2, 0.3, 0.5));

}  // namespace
}  // namespace modis
