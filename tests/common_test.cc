#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/kmeans.h"
#include "common/matrix.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/strings.h"

namespace modis {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode c :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kAlreadyExists,
        StatusCode::kFailedPrecondition, StatusCode::kInternal,
        StatusCode::kUnimplemented, StatusCode::kIoError}) {
    EXPECT_STRNE(StatusCodeName(c), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::InvalidArgument("bad");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, OkStatusBecomesInternalError) {
  Result<int> r = Status::OK();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

Result<int> Halve(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseMacros(int x, int* out) {
  MODIS_ASSIGN_OR_RETURN(int h, Halve(x));
  *out = h;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(UseMacros(8, &out).ok());
  EXPECT_EQ(out, 4);
  EXPECT_FALSE(UseMacros(7, &out).ok());
}

// ---------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntRespectsBounds) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformInt(7), 7u);
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformInt(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NormalHasApproxUnitMoments) {
  Rng rng(8);
  std::vector<double> xs(20000);
  for (double& x : xs) x = rng.Normal();
  EXPECT_NEAR(Mean(xs), 0.0, 0.05);
  EXPECT_NEAR(Variance(xs), 1.0, 0.1);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(9);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(10);
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 9000; ++i) counts[rng.Categorical({1.0, 2.0, 6.0})]++;
  EXPECT_NEAR(counts[0] / 9000.0, 1.0 / 9.0, 0.03);
  EXPECT_NEAR(counts[2] / 9000.0, 6.0 / 9.0, 0.03);
}

TEST(RngTest, CategoricalSkipsZeroWeights) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.Categorical({0.0, 1.0, 0.0}), 1u);
  }
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(12);
  for (int trial = 0; trial < 50; ++trial) {
    auto s = rng.SampleWithoutReplacement(20, 10);
    std::set<size_t> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), 10u);
    for (size_t v : s) EXPECT_LT(v, 20u);
  }
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(13);
  std::vector<int> v{1, 2, 3, 4, 5, 6};
  std::vector<int> w = v;
  rng.Shuffle(&w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

// ---------------------------------------------------------------- Strings

TEST(StringsTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(StrSplit("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StrSplit("x", ','), (std::vector<std::string>{"x"}));
}

TEST(StringsTest, TrimStripsWhitespace) {
  EXPECT_EQ(StrTrim("  a b  "), "a b");
  EXPECT_EQ(StrTrim("\t\n"), "");
}

TEST(StringsTest, JoinWithSeparator) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ","), "");
}

TEST(StringsTest, ParseDoubleStrict) {
  double d = 0;
  EXPECT_TRUE(ParseDouble("3.5", &d));
  EXPECT_DOUBLE_EQ(d, 3.5);
  EXPECT_TRUE(ParseDouble(" -2e3 ", &d));
  EXPECT_DOUBLE_EQ(d, -2000.0);
  EXPECT_FALSE(ParseDouble("3.5x", &d));
  EXPECT_FALSE(ParseDouble("", &d));
}

TEST(StringsTest, ParseInt64Strict) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("-42", &v));
  EXPECT_EQ(v, -42);
  EXPECT_FALSE(ParseInt64("4.2", &v));
  EXPECT_FALSE(ParseInt64("abc", &v));
}

TEST(StringsTest, FormatDoubleDigits) {
  EXPECT_EQ(FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
}

TEST(StringsTest, PadRightPadsAndTruncates) {
  EXPECT_EQ(PadRight("ab", 4), "ab  ");
  EXPECT_EQ(PadRight("abcdef", 3), "abc");
}

// ---------------------------------------------------------------- Matrix

TEST(MatrixTest, GramIsTransposeTimesSelf) {
  Matrix a(3, 2);
  a.At(0, 0) = 1;
  a.At(0, 1) = 2;
  a.At(1, 0) = 3;
  a.At(1, 1) = 4;
  a.At(2, 0) = 5;
  a.At(2, 1) = 6;
  Matrix g = a.Gram();
  EXPECT_DOUBLE_EQ(g.At(0, 0), 1 + 9 + 25);
  EXPECT_DOUBLE_EQ(g.At(0, 1), 2 + 12 + 30);
  EXPECT_DOUBLE_EQ(g.At(1, 0), g.At(0, 1));
  EXPECT_DOUBLE_EQ(g.At(1, 1), 4 + 16 + 36);
}

TEST(MatrixTest, TimesAndTransposeTimes) {
  Matrix a(2, 3);
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 3; ++c) a.At(r, c) = r * 3.0 + c + 1;
  }
  auto y = a.Times({1, 0, -1});
  EXPECT_DOUBLE_EQ(y[0], 1 - 3);
  EXPECT_DOUBLE_EQ(y[1], 4 - 6);
  auto z = a.TransposeTimes({1, 1});
  EXPECT_DOUBLE_EQ(z[0], 1 + 4);
  EXPECT_DOUBLE_EQ(z[2], 3 + 6);
}

TEST(CholeskyTest, SolvesSpdSystem) {
  // A = [[4,2],[2,3]], b = [6,5] -> x = [1,1].
  Matrix a(2, 2);
  a.At(0, 0) = 4;
  a.At(0, 1) = 2;
  a.At(1, 0) = 2;
  a.At(1, 1) = 3;
  auto x = CholeskySolve(a, {6, 5});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(x.value()[0], 1.0, 1e-12);
  EXPECT_NEAR(x.value()[1], 1.0, 1e-12);
}

TEST(CholeskyTest, RejectsNonSpd) {
  Matrix a(2, 2);
  a.At(0, 0) = 0;
  a.At(1, 1) = 1;
  EXPECT_FALSE(CholeskySolve(a, {1, 1}).ok());
}

TEST(CholeskyTest, RejectsDimensionMismatch) {
  Matrix a(2, 2, 1.0);
  EXPECT_FALSE(CholeskySolve(a, {1, 2, 3}).ok());
}

// ---------------------------------------------------------------- Stats

TEST(StatsTest, MeanVarianceStdDev) {
  std::vector<double> v{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Mean(v), 2.5);
  EXPECT_DOUBLE_EQ(Variance(v), 1.25);
  EXPECT_DOUBLE_EQ(StdDev(v), std::sqrt(1.25));
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({7.0}), 0.0);
}

TEST(StatsTest, ClampBounds) {
  EXPECT_DOUBLE_EQ(Clamp(5, 0, 1), 1.0);
  EXPECT_DOUBLE_EQ(Clamp(-5, 0, 1), 0.0);
  EXPECT_DOUBLE_EQ(Clamp(0.5, 0, 1), 0.5);
}

TEST(StatsTest, SigmoidSymmetricAndStable) {
  EXPECT_DOUBLE_EQ(Sigmoid(0.0), 0.5);
  EXPECT_NEAR(Sigmoid(3.0) + Sigmoid(-3.0), 1.0, 1e-12);
  EXPECT_NEAR(Sigmoid(1000.0), 1.0, 1e-12);
  EXPECT_NEAR(Sigmoid(-1000.0), 0.0, 1e-12);
}

TEST(StatsTest, CosineSimilarity) {
  EXPECT_DOUBLE_EQ(CosineSimilarity({1, 0}, {0, 1}), 0.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity({1, 1}, {2, 2}), 1.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity({0, 0}, {1, 1}), 0.0);
  EXPECT_NEAR(CosineSimilarity({1, 0}, {-1, 0}), -1.0, 1e-12);
}

TEST(StatsTest, EuclideanDistance) {
  EXPECT_DOUBLE_EQ(EuclideanDistance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(EuclideanDistance({1, 1}, {1, 1}), 0.0);
}

// ---------------------------------------------------------------- KMeans

TEST(KMeansTest, FewDistinctValuesBecomeCenters) {
  Rng rng(1);
  std::vector<double> data{1, 1, 1, 5, 5, 9};
  auto r = KMeans1D(data, 5, &rng);
  EXPECT_EQ(r.centers.size(), 3u);
  EXPECT_TRUE(std::is_sorted(r.centers.begin(), r.centers.end()));
}

TEST(KMeansTest, SeparatedClustersFound) {
  Rng rng(2);
  std::vector<double> data;
  for (int i = 0; i < 50; ++i) data.push_back(0.0 + i * 0.01);
  for (int i = 0; i < 50; ++i) data.push_back(10.0 + i * 0.01);
  auto r = KMeans1D(data, 2, &rng);
  ASSERT_EQ(r.centers.size(), 2u);
  EXPECT_NEAR(r.centers[0], 0.25, 0.3);
  EXPECT_NEAR(r.centers[1], 10.25, 0.3);
  // Assignment must separate the halves.
  for (int i = 0; i < 50; ++i) EXPECT_EQ(r.assignment[i], 0);
  for (int i = 50; i < 100; ++i) EXPECT_EQ(r.assignment[i], 1);
}

TEST(KMeansTest, AssignmentIndexInRange) {
  Rng rng(3);
  std::vector<double> data;
  for (int i = 0; i < 200; ++i) data.push_back(rng.Normal());
  auto r = KMeans1D(data, 4, &rng);
  for (int a : r.assignment) {
    EXPECT_GE(a, 0);
    EXPECT_LT(a, static_cast<int>(r.centers.size()));
  }
}

TEST(KMeansTest, EmptyInput) {
  Rng rng(4);
  auto r = KMeans1D({}, 3, &rng);
  EXPECT_TRUE(r.centers.empty());
  EXPECT_TRUE(r.assignment.empty());
}

class KMeansParamTest : public ::testing::TestWithParam<int> {};

TEST_P(KMeansParamTest, CentersNeverExceedK) {
  const int k = GetParam();
  Rng rng(100 + k);
  std::vector<double> data;
  for (int i = 0; i < 300; ++i) data.push_back(rng.Uniform(0, 100));
  auto r = KMeans1D(data, k, &rng);
  EXPECT_LE(static_cast<int>(r.centers.size()), k);
  EXPECT_GE(r.centers.size(), 1u);
  EXPECT_TRUE(std::is_sorted(r.centers.begin(), r.centers.end()));
}

INSTANTIATE_TEST_SUITE_P(Ks, KMeansParamTest,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 30));

}  // namespace
}  // namespace modis
