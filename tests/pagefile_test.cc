/// Fault-injection battery for the paged record-cache engine: the
/// PageFile block layer (superblock ping-pong, CRC framing, epoch
/// bounds), the PagedStore record layer (hash-index lookups, quarantine,
/// GC) and the PersistentRecordCache front door (engine selection, v1
/// migration, byte-bound eviction). Every corruption case must either
/// recover to a valid prefix of the data or fail fast with a typed
/// error — corrupt bytes are never served as records.
///
/// POSIX-only like the engine itself (flock + pread/pwrite); the suite
/// compiles to a skip on Windows.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "storage/page_file.h"
#include "storage/paged_store.h"
#include "storage/persistent_record_cache.h"
#include "storage/record_log.h"

namespace modis {
namespace {

namespace fs = std::filesystem;

#if !defined(_WIN32)

// ---------------------------------------------------------------- helpers

/// A fresh path under the test temp dir, with every sidecar the engine
/// may leave behind removed so each test starts from a missing file.
std::string TempPath(const std::string& name) {
  const fs::path path = fs::path(::testing::TempDir()) / name;
  fs::remove(path);
  for (const char* suffix : {".gc", ".migrate", ".compact"}) {
    fs::remove(fs::path(path.string() + suffix));
  }
  return path.string();
}

StoredRecord MakeRecord(uint64_t fingerprint, const std::string& key,
                        double salt) {
  StoredRecord r;
  r.fingerprint = fingerprint;
  r.key = key;
  r.features = {salt, salt + 1.0, 0.25};
  r.eval.raw = {salt * 2.0, -salt};
  r.eval.normalized = {0.5 + salt / 100.0, 0.125};
  return r;
}

void ExpectRecordEq(const StoredRecord& a, const StoredRecord& b) {
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.key, b.key);
  EXPECT_EQ(a.features, b.features);
  EXPECT_EQ(a.eval.raw, b.eval.raw);
  EXPECT_EQ(a.eval.normalized, b.eval.normalized);
}

std::vector<uint8_t> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path,
                    const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            std::streamsize(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

void TruncateFile(const std::string& path, size_t size) {
  std::vector<uint8_t> bytes = ReadFileBytes(path);
  ASSERT_LE(size, bytes.size());
  bytes.resize(size);
  WriteFileBytes(path, bytes);
}

void FlipBit(const std::string& path, size_t byte, int bit) {
  std::vector<uint8_t> bytes = ReadFileBytes(path);
  ASSERT_LT(byte, bytes.size());
  bytes[byte] ^= uint8_t(1u << bit);
  WriteFileBytes(path, bytes);
}

/// Builds a paged store of `n` small records at a 512-byte page size (so
/// even a modest record set spans many pages) and returns the file bytes.
constexpr uint64_t kFp = 0xFEEDFACEu;
constexpr uint32_t kSmallPage = 512;

std::string BuildStore(const std::string& name, size_t n) {
  const std::string path = TempPath(name);
  PagedStore::Options options;
  options.page_size = kSmallPage;
  auto store = PagedStore::Open(path, /*read_only=*/false, options);
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  for (size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(
        (*store)->Insert(MakeRecord(kFp, "k" + std::to_string(i), double(i))));
  }
  EXPECT_TRUE((*store)->Flush().ok());
  return path;
}

/// Probes every record of a (possibly damaged) store: each key either
/// replays byte-identically or reports a clean miss. Returns the hits.
size_t ProbeAll(PagedStore* store, size_t n) {
  size_t hits = 0;
  for (size_t i = 0; i < n; ++i) {
    StoredRecord out;
    if (store->Get(kFp, "k" + std::to_string(i), &out)) {
      ExpectRecordEq(out, MakeRecord(kFp, "k" + std::to_string(i), double(i)));
      ++hits;
    }
  }
  return hits;
}

// ---------------------------------------------------------------- PageFile

TEST(PageFileTest, CreateWriteCommitReopen) {
  const std::string path = TempPath("pf_roundtrip.pg");
  uint32_t id = 0;
  {
    auto file = PageFile::Open(path, /*read_only=*/false);
    ASSERT_TRUE(file.ok()) << file.status().ToString();
    EXPECT_TRUE((*file)->created());
    EXPECT_EQ((*file)->page_size(), PageFile::kDefaultPageSize);
    id = (*file)->AllocatePage();
    std::vector<uint8_t> page((*file)->page_size(), 0);
    PageFile::SetPageType(page.data(), PageFile::kData);
    PageFile::SetPageUsed(page.data(), 11);
    std::memcpy(page.data() + PageFile::kPageHeaderSize, "hello pages", 11);
    ASSERT_TRUE((*file)->WritePage(id, &page).ok());
    ASSERT_TRUE((*file)->Commit().ok());
  }
  auto file = PageFile::Open(path, /*read_only=*/true);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  EXPECT_FALSE((*file)->created());
  std::vector<uint8_t> page;
  ASSERT_TRUE((*file)->ReadPage(id, &page).ok());
  EXPECT_EQ(PageFile::PageTypeOf(page.data()), PageFile::kData);
  EXPECT_EQ(PageFile::PageUsed(page.data()), 11u);
  EXPECT_EQ(std::memcmp(page.data() + PageFile::kPageHeaderSize,
                        "hello pages", 11),
            0);
}

TEST(PageFileTest, RejectsBadPageSizes) {
  for (const uint32_t bad : {uint32_t(256), uint32_t(600), uint32_t(2) << 20}) {
    const std::string path = TempPath("pf_badsize.pg");
    PageFile::CreateOptions create;
    create.page_size = bad;
    auto file = PageFile::Open(path, /*read_only=*/false, create);
    EXPECT_FALSE(file.ok()) << bad;
    EXPECT_EQ(file.status().code(), StatusCode::kInvalidArgument) << bad;
  }
}

TEST(PageFileTest, MissingFileReadOnlyIsNotFound) {
  auto file = PageFile::Open(TempPath("pf_missing.pg"), /*read_only=*/true);
  ASSERT_FALSE(file.ok());
  EXPECT_EQ(file.status().code(), StatusCode::kNotFound);
}

TEST(PageFileTest, SuperblockPingPongSurvivesTornCommit) {
  const std::string path = TempPath("pf_pingpong.pg");
  uint32_t id = 0;
  uint64_t second_epoch = 0;
  {
    auto file = PageFile::Open(path, /*read_only=*/false);
    ASSERT_TRUE(file.ok());
    id = (*file)->AllocatePage();
    std::vector<uint8_t> page((*file)->page_size(), 0);
    PageFile::SetPageType(page.data(), PageFile::kData);
    ASSERT_TRUE((*file)->WritePage(id, &page).ok());
    ASSERT_TRUE((*file)->Commit().ok());  // Epoch 1 -> slot A.
    ASSERT_TRUE((*file)->Commit().ok());  // Epoch 2 -> slot B.
    second_epoch = (*file)->committed_epoch();
  }
  // Tear the most recent commit: even epochs live in slot B (offset
  // 256), odd epochs in slot A (offset 0).
  const size_t torn_slot =
      (second_epoch % 2 == 0) ? PageFile::kSuperblockSlotSize : 0;
  FlipBit(path, torn_slot + 20, 0);
  auto file = PageFile::Open(path, /*read_only=*/false);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  EXPECT_EQ((*file)->committed_epoch(), second_epoch - 1)
      << "open must fall back to the surviving slot";
  std::vector<uint8_t> page;
  EXPECT_TRUE((*file)->ReadPage(id, &page).ok());
}

TEST(PageFileTest, TruncatedSuperblockFailsFastBothModes) {
  const std::string path = TempPath("pf_truncsb.pg");
  {
    auto file = PageFile::Open(path, /*read_only=*/false);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Commit().ok());
  }
  // Mid-slot, before the CRC field at offset 64: magic + version intact,
  // CRC zeroed — a committed state that can no longer be trusted. (A cut
  // past offset 68 would leave the 68-byte slot self-contained and
  // recoverable; that case is covered by the torn-tail tests.)
  TruncateFile(path, 40);
  for (const bool read_only : {true, false}) {
    auto file = PageFile::Open(path, read_only);
    ASSERT_FALSE(file.ok()) << (read_only ? "ro" : "rw");
    // Typed: corruption is IoError, never a silent fresh start (the
    // truncated slot still carries committed non-zero state).
    EXPECT_EQ(file.status().code(), StatusCode::kIoError);
  }
}

TEST(PageFileTest, OwnCreationDebrisRestartsFresh) {
  const std::string path = TempPath("pf_debris.pg");
  // A crash after open(O_CREAT) but before the first commit leaves our
  // magic prefix (or nothing) — a writable open may safely start over.
  WriteFileBytes(path, {'M', 'O', 'D', 'I', 'S'});
  auto file = PageFile::Open(path, /*read_only=*/false);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  EXPECT_TRUE((*file)->created());
}

TEST(PageFileTest, ForeignContentIsRejectedNotClobbered) {
  const std::string path = TempPath("pf_foreign.pg");
  WriteFileBytes(path, {'N', 'O', 'T', 'O', 'U', 'R', 'S', '!'});
  auto file = PageFile::Open(path, /*read_only=*/false);
  ASSERT_FALSE(file.ok());
  EXPECT_EQ(file.status().code(), StatusCode::kIoError);
  EXPECT_EQ(ReadFileBytes(path).size(), 8u) << "must not clobber the file";
}

TEST(PageFileTest, FutureFormatVersionFailsPrecondition) {
  const std::string path = TempPath("pf_version.pg");
  {
    auto file = PageFile::Open(path, /*read_only=*/false);
    ASSERT_TRUE(file.ok());
  }
  // Bump the version field (offset 8) of both slots and re-CRC them.
  std::vector<uint8_t> bytes = ReadFileBytes(path);
  for (const size_t base : {size_t(0), PageFile::kSuperblockSlotSize}) {
    bytes[base + 8] = 99;
    const uint32_t crc = Crc32(bytes.data() + base, 64);
    for (int i = 0; i < 4; ++i) {
      bytes[base + 64 + i] = uint8_t((crc >> (8 * i)) & 0xFF);
    }
  }
  WriteFileBytes(path, bytes);
  auto file = PageFile::Open(path, /*read_only=*/true);
  ASSERT_FALSE(file.ok());
  EXPECT_EQ(file.status().code(), StatusCode::kFailedPrecondition);
}

TEST(PageFileTest, UncommittedTailTruncatedOnWritableReopen) {
  const std::string path = TempPath("pf_tail.pg");
  {
    auto file = PageFile::Open(path, /*read_only=*/false);
    ASSERT_TRUE(file.ok());
    // Allocate + write a page, then "crash" before Commit.
    const uint32_t id = (*file)->AllocatePage();
    std::vector<uint8_t> page((*file)->page_size(), 0);
    PageFile::SetPageType(page.data(), PageFile::kData);
    ASSERT_TRUE((*file)->WritePage(id, &page).ok());
  }
  const size_t fat = ReadFileBytes(path).size();
  auto file = PageFile::Open(path, /*read_only=*/false);
  ASSERT_TRUE(file.ok());
  EXPECT_EQ((*file)->discarded_tail_bytes(),
            fat - (*file)->meta().page_count * (*file)->page_size());
  EXPECT_GT((*file)->discarded_tail_bytes(), 0u);
  EXPECT_EQ(fs::file_size(path),
            uint64_t((*file)->meta().page_count) * (*file)->page_size());
}

TEST(PageFileTest, FutureEpochPageIsQuarantined) {
  const std::string path = TempPath("pf_future.pg");
  uint32_t id = 0;
  {
    auto file = PageFile::Open(path, /*read_only=*/false);
    ASSERT_TRUE(file.ok());
    id = (*file)->AllocatePage();
    std::vector<uint8_t> page((*file)->page_size(), 0);
    PageFile::SetPageType(page.data(), PageFile::kData);
    ASSERT_TRUE((*file)->WritePage(id, &page).ok());
    ASSERT_TRUE((*file)->Commit().ok());
  }
  // Forge an epoch far past any legitimate generation, with a valid CRC:
  // the CRC covers page[4..), so recompute it after the edit.
  std::vector<uint8_t> bytes = ReadFileBytes(path);
  const size_t base = size_t(id) * PageFile::kDefaultPageSize;
  const uint64_t forged = 1u << 20;
  for (int i = 0; i < 8; ++i) {
    bytes[base + 4 + i] = uint8_t((forged >> (8 * i)) & 0xFF);
  }
  const uint32_t crc =
      Crc32(bytes.data() + base + 4, PageFile::kDefaultPageSize - 4);
  for (int i = 0; i < 4; ++i) {
    bytes[base + i] = uint8_t((crc >> (8 * i)) & 0xFF);
  }
  WriteFileBytes(path, bytes);
  auto file = PageFile::Open(path, /*read_only=*/true);
  ASSERT_TRUE(file.ok());
  std::vector<uint8_t> page;
  const Status read = (*file)->ReadPage(id, &page);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.code(), StatusCode::kIoError);
  EXPECT_NE(read.ToString().find("future"), std::string::npos);
}

TEST(PageFileTest, SingleWriterFlockContract) {
  const std::string path = TempPath("pf_flock.pg");
  auto writer = PageFile::Open(path, /*read_only=*/false);
  ASSERT_TRUE(writer.ok());
  auto second = PageFile::Open(path, /*read_only=*/false);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kFailedPrecondition);
  // Unlike the v1 scan-once reader, a paged reader holds its shared lock
  // for its lifetime, so it cannot attach while a writer is live either.
  auto reader = PageFile::Open(path, /*read_only=*/true);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kFailedPrecondition);
  writer->reset();
  auto after = PageFile::Open(path, /*read_only=*/true);
  EXPECT_TRUE(after.ok()) << after.status().ToString();
}

// --------------------------------------------------- fault injection

TEST(PagedStoreFaultTest, TornTailAtEveryPageBoundary) {
  constexpr size_t kRecords = 24;
  const std::string path = BuildStore("ps_torn.pg", kRecords);
  const std::vector<uint8_t> pristine = ReadFileBytes(path);
  const size_t pages = pristine.size() / kSmallPage;
  ASSERT_GE(pages, 6u) << "fixture must span many pages";

  for (size_t boundary = 1; boundary < pages; ++boundary) {
    WriteFileBytes(path, pristine);
    // Tear mid-page at this boundary: everything from the middle of page
    // `boundary` on is lost, as after a crashed write-back.
    TruncateFile(path, boundary * kSmallPage + kSmallPage / 2);
    PagedStore::Options options;
    options.page_size = kSmallPage;
    auto store = PagedStore::Open(path, /*read_only=*/false, options);
    ASSERT_TRUE(store.ok())
        << "boundary " << boundary << ": " << store.status().ToString();
    // Every reachable record replays byte-identically; the rest are
    // clean misses (ProbeAll fails the test on any wrong bytes).
    const size_t hits = ProbeAll(store->get(), kRecords);
    EXPECT_LE(hits, kRecords);
    // The recovered store must accept new writes and survive a reopen.
    EXPECT_TRUE((*store)->Insert(MakeRecord(kFp, "fresh", 7.0)));
    ASSERT_TRUE((*store)->Flush().ok());
    store->reset();
    auto reopened = PagedStore::Open(path, /*read_only=*/true, options);
    ASSERT_TRUE(reopened.ok()) << "boundary " << boundary;
    StoredRecord out;
    ASSERT_TRUE((*reopened)->Get(kFp, "fresh", &out));
    ExpectRecordEq(out, MakeRecord(kFp, "fresh", 7.0));
  }
}

TEST(PagedStoreFaultTest, SingleBitFlipInPageBody) {
  constexpr size_t kRecords = 24;
  const std::string path = BuildStore("ps_flipbody.pg", kRecords);
  const size_t pages = ReadFileBytes(path).size() / kSmallPage;
  ASSERT_GE(pages, 4u);
  // Flip one payload bit in every page past the superblock, one at a
  // time; the CRC must catch each and degrade lookups to misses.
  for (size_t page = 1; page < pages; ++page) {
    SCOPED_TRACE("page " + std::to_string(page));
    const std::vector<uint8_t> pristine = ReadFileBytes(path);
    FlipBit(path, page * kSmallPage + PageFile::kPageHeaderSize + 7, 3);
    PagedStore::Options options;
    options.page_size = kSmallPage;
    auto store = PagedStore::Open(path, /*read_only=*/false, options);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    const size_t hits = ProbeAll(store->get(), kRecords);
    EXPECT_LT(hits, kRecords) << "damage must cost at least one record";
    EXPECT_GT((*store)->stats().quarantined, 0u);
    store->reset();
    WriteFileBytes(path, pristine);
  }
}

TEST(PagedStoreFaultTest, SingleBitFlipInPageHeader) {
  constexpr size_t kRecords = 12;
  const std::string path = BuildStore("ps_fliphdr.pg", kRecords);
  // Corrupt the `used` field (header offset 16) of the directory page
  // (page 1): the index root itself fails validation.
  FlipBit(path, 1 * kSmallPage + 16, 7);
  PagedStore::Options options;
  options.page_size = kSmallPage;
  {
    // Read-only: every lookup degrades to a quarantined miss.
    auto store = PagedStore::Open(path, /*read_only=*/true, options);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    EXPECT_EQ(ProbeAll(store->get(), kRecords), 0u);
    EXPECT_GT((*store)->stats().quarantined, 0u);
  }
  {
    // Writable: the index root is rebuilt empty (records retrain), and
    // the store serves new writes again.
    auto store = PagedStore::Open(path, /*read_only=*/false, options);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    EXPECT_EQ(ProbeAll(store->get(), kRecords), 0u);
    EXPECT_TRUE((*store)->Insert(MakeRecord(kFp, "post", 3.0)));
    ASSERT_TRUE((*store)->Flush().ok());
    StoredRecord out;
    EXPECT_TRUE((*store)->Get(kFp, "post", &out));
  }
}

TEST(PagedStoreFaultTest, StaleEpochDuplicatePageIsRejected) {
  const std::string path = TempPath("ps_stale.pg");
  PagedStore::Options options;
  options.page_size = kSmallPage;
  // Session 1: record A lands in the first data page (page 2).
  {
    auto store = PagedStore::Open(path, /*read_only=*/false, options);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Insert(MakeRecord(kFp, "a", 1.0)));
    ASSERT_TRUE((*store)->Flush().ok());
  }
  const std::vector<uint8_t> old_image = ReadFileBytes(path);
  // Session 2: record B appends into the same active data page, which is
  // re-stamped with the newer working epoch.
  {
    auto store = PagedStore::Open(path, /*read_only=*/false, options);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Insert(MakeRecord(kFp, "b", 2.0)));
    ASSERT_TRUE((*store)->Flush().ok());
  }
  // A misbehaving disk resurrects the session-1 image of that data page:
  // CRC-valid, epoch-stale. B's index entry recorded a higher min_epoch,
  // so the lookup must refuse the stale image rather than serve garbage.
  std::vector<uint8_t> bytes = ReadFileBytes(path);
  ASSERT_GE(old_image.size(), 3u * kSmallPage);
  std::copy(old_image.begin() + 2 * kSmallPage,
            old_image.begin() + 3 * kSmallPage, bytes.begin() + 2 * kSmallPage);
  WriteFileBytes(path, bytes);

  auto store = PagedStore::Open(path, /*read_only=*/true, options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  StoredRecord out;
  EXPECT_FALSE((*store)->Get(kFp, "b", &out))
      << "stale duplicate page must read as a miss, not as old bytes";
  EXPECT_GT((*store)->stats().quarantined, 0u);
  // Record A predates the stale image and is still intact inside it.
  ASSERT_TRUE((*store)->Get(kFp, "a", &out));
  ExpectRecordEq(out, MakeRecord(kFp, "a", 1.0));
}

// --------------------------------------------------- bounded memory

TEST(PagedStoreTest, PointLookupsStayWithinTinyFrameBudget) {
  constexpr size_t kRecords = 300;
  constexpr size_t kBudget = 4;
  const std::string path = BuildStore("ps_bounded.pg", kRecords);

  PagedStore::Options options;
  options.page_size = kSmallPage;
  options.buffer_frames = kBudget;
  auto store = PagedStore::Open(path, /*read_only=*/true, options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  const uint32_t pages = (*store)->stats().page_count;
  ASSERT_GT(pages, 20 * kBudget)
      << "fixture must dwarf the buffer budget for this test to mean much";

  for (size_t i = 0; i < 10; ++i) {
    StoredRecord out;
    const size_t pick = (i * 37) % kRecords;
    ASSERT_TRUE((*store)->Get(kFp, "k" + std::to_string(pick), &out));
    ExpectRecordEq(out,
                   MakeRecord(kFp, "k" + std::to_string(pick), double(pick)));
  }
  const BufferPool::Stats pool = (*store)->stats().pool;
  // The memory contract: never more frames resident than the budget.
  EXPECT_LE(pool.max_frames_in_use, kBudget);
  EXPECT_LE(pool.frames_in_use, kBudget);
  // The I/O contract: point lookups touch O(1) pages each — nothing
  // resembling a full-file load (directory + index chain + data pages).
  EXPECT_LT(pool.misses, uint64_t(pages) / 2)
      << "warm point lookups must not replay the file";
}

TEST(PagedStoreTest, GcDropsTombstonesAndReportsReclaimedBytes) {
  constexpr size_t kRecords = 40;
  const std::string path = BuildStore("ps_gc.pg", kRecords);
  PagedStore::Options options;
  options.page_size = kSmallPage;
  auto store = PagedStore::Open(path, /*read_only=*/false, options);
  ASSERT_TRUE(store.ok());
  const uint64_t before = (*store)->file_bytes();

  // Tombstone three quarters of the records, preserving every fourth.
  std::vector<PagedStore::EntryInfo> entries;
  ASSERT_TRUE((*store)->CollectEntries(&entries).ok());
  ASSERT_EQ(entries.size(), kRecords);
  std::vector<PagedStore::EntryInfo> victims;
  size_t kept = 0;
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i % 4 != 0) victims.push_back(entries[i]);
    else ++kept;
  }
  ASSERT_TRUE((*store)->Tombstone(victims).ok());
  size_t dropped = 0;
  ASSERT_TRUE((*store)->Gc(&dropped).ok());
  EXPECT_EQ(dropped, victims.size());
  EXPECT_EQ((*store)->stats().record_count, kept);
  EXPECT_EQ((*store)->stats().dead_records, 0u);
  EXPECT_LT((*store)->file_bytes(), before);
  EXPECT_EQ((*store)->stats().reclaimed_bytes, before - (*store)->file_bytes());

  // The survivors still replay; the GC'd store stays crash-consistent
  // across a reopen (rename + lock carry kept path_ coherent).
  ASSERT_TRUE((*store)->Flush().ok());
  store->reset();
  auto reopened = PagedStore::Open(path, /*read_only=*/true, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  size_t hits = 0;
  for (size_t i = 0; i < kRecords; ++i) {
    StoredRecord out;
    if ((*reopened)->Get(kFp, "k" + std::to_string(i), &out)) {
      ExpectRecordEq(out,
                     MakeRecord(kFp, "k" + std::to_string(i), double(i)));
      ++hits;
    }
  }
  EXPECT_EQ(hits, kept);
}

// --------------------------------------------------- cache front door

TEST(PagedCacheTest, ColdWarmRoundTripAndFormatDetection) {
  const std::string path = TempPath("pc_roundtrip.cache");
  PersistentRecordCache::Options options;
  options.page_size = kSmallPage;
  {
    auto cache =
        PersistentRecordCache::Open(path, CacheMode::kReadWrite, kFp, options);
    ASSERT_TRUE(cache.ok()) << cache.status().ToString();
    for (int i = 0; i < 10; ++i) {
      const StoredRecord r = MakeRecord(kFp, "s" + std::to_string(i), i);
      (*cache)->Insert(r.key, r.features, r.eval);
    }
    ASSERT_TRUE((*cache)->Flush().ok());
    EXPECT_EQ((*cache)->stats().appended, 10u);
  }
  // The file on disk is a v2 page file, not a v1 log.
  const std::vector<uint8_t> head = ReadFileBytes(path);
  ASSERT_GE(head.size(), 8u);
  EXPECT_EQ(std::memcmp(head.data(), PageFile::kMagic, 8), 0);

  // Warm reopen — with *default* options: the file format must win the
  // engine selection, no page_size hint required.
  auto cache = PersistentRecordCache::Open(path, CacheMode::kReadWrite, kFp);
  ASSERT_TRUE(cache.ok()) << cache.status().ToString();
  EXPECT_EQ((*cache)->stats().loaded_records, 10u);
  EXPECT_EQ((*cache)->stats().task_records, 10u);
  EXPECT_EQ((*cache)->size(), 10u);
  for (int i = 0; i < 10; ++i) {
    StoredRecord out;
    ASSERT_TRUE((*cache)->Get(kFp, "s" + std::to_string(i), &out)) << i;
    ExpectRecordEq(out, MakeRecord(kFp, "s" + std::to_string(i), i));
  }
  EXPECT_EQ((*cache)->stats().served, 10u);
}

TEST(PagedCacheTest, MigratesV1LogOnceUnderReadWrite) {
  const std::string path = TempPath("pc_migrate.cache");
  // Seed a v1 log through the default engine.
  {
    auto cache = PersistentRecordCache::Open(path, CacheMode::kReadWrite, kFp);
    ASSERT_TRUE(cache.ok());
    for (int i = 0; i < 8; ++i) {
      const StoredRecord r = MakeRecord(kFp, "m" + std::to_string(i), i);
      (*cache)->Insert(r.key, r.features, r.eval);
    }
    ASSERT_TRUE((*cache)->Flush().ok());
  }
  ASSERT_EQ(std::memcmp(ReadFileBytes(path).data(), RecordLog::kMagic, 8), 0);

  // Requesting the paged engine read-only must NOT rewrite the file.
  PersistentRecordCache::Options options;
  options.page_size = kSmallPage;
  {
    auto cache =
        PersistentRecordCache::Open(path, CacheMode::kRead, kFp, options);
    ASSERT_TRUE(cache.ok()) << cache.status().ToString();
    EXPECT_EQ((*cache)->stats().loaded_records, 8u);
  }
  ASSERT_EQ(std::memcmp(ReadFileBytes(path).data(), RecordLog::kMagic, 8), 0);

  // Read-write migrates once; every record survives byte-identically.
  {
    auto cache =
        PersistentRecordCache::Open(path, CacheMode::kReadWrite, kFp, options);
    ASSERT_TRUE(cache.ok()) << cache.status().ToString();
    EXPECT_EQ((*cache)->stats().loaded_records, 8u);
    for (int i = 0; i < 8; ++i) {
      StoredRecord out;
      ASSERT_TRUE((*cache)->Get(kFp, "m" + std::to_string(i), &out)) << i;
      ExpectRecordEq(out, MakeRecord(kFp, "m" + std::to_string(i), i));
    }
  }
  EXPECT_EQ(std::memcmp(ReadFileBytes(path).data(), PageFile::kMagic, 8), 0);
  EXPECT_FALSE(fs::exists(path + ".migrate"));

  // And a later default-options open keeps serving it paged.
  auto cache = PersistentRecordCache::Open(path, CacheMode::kReadWrite, kFp);
  ASSERT_TRUE(cache.ok());
  EXPECT_EQ((*cache)->stats().loaded_records, 8u);
}

TEST(PagedCacheTest, ByteBoundEvictsColdestAndReportsReclaimed) {
  const std::string path = TempPath("pc_bound.cache");
  PersistentRecordCache::Options options;
  options.page_size = kSmallPage;
  // Room for ~23 records after rebuild (each survivor costs roughly one
  // index page at this scale, plus the shared stream/superblock pages) —
  // comfortably more than the 10 recently-touched ones that must live.
  options.max_bytes = 30 * kSmallPage;
  auto cache =
      PersistentRecordCache::Open(path, CacheMode::kReadWrite, kFp, options);
  ASSERT_TRUE(cache.ok()) << cache.status().ToString();
  for (int i = 0; i < 120; ++i) {
    const StoredRecord r = MakeRecord(kFp, "e" + std::to_string(i), i);
    (*cache)->Insert(r.key, r.features, r.eval);
  }
  // Refresh a handful so eviction has a recency signal to respect.
  for (int i = 110; i < 120; ++i) {
    EXPECT_TRUE((*cache)->Touch(kFp, "e" + std::to_string(i)));
  }
  ASSERT_TRUE((*cache)->Flush().ok());
  const PersistentRecordCache::Stats stats = (*cache)->stats();
  EXPECT_LE(stats.log_bytes, options.max_bytes);
  EXPECT_LE(fs::file_size(path), options.max_bytes);
  EXPECT_GT(stats.evicted, 0u);
  EXPECT_GT(stats.reclaimed_bytes, 0u)
      << "page GC must report through the shared compaction counter";
  // The most-recently-touched records must have survived the cull.
  for (int i = 110; i < 120; ++i) {
    EXPECT_TRUE((*cache)->Contains(kFp, "e" + std::to_string(i))) << i;
  }
}

TEST(PagedCacheTest, V1RewriteReportsReclaimedBytesToo) {
  // Satellite contract: both engines expose the same compaction counter.
  const std::string path = TempPath("pc_v1_reclaim.cache");
  PersistentRecordCache::Options options;
  options.max_bytes = 2048;  // v1 log, tight budget.
  auto cache =
      PersistentRecordCache::Open(path, CacheMode::kReadWrite, kFp, options);
  ASSERT_TRUE(cache.ok());
  for (int i = 0; i < 60; ++i) {
    const StoredRecord r = MakeRecord(kFp, "v" + std::to_string(i), i);
    (*cache)->Insert(r.key, r.features, r.eval);
  }
  ASSERT_TRUE((*cache)->Flush().ok());
  const PersistentRecordCache::Stats stats = (*cache)->stats();
  ASSERT_EQ(std::memcmp(ReadFileBytes(path).data(), RecordLog::kMagic, 8), 0);
  EXPECT_GT(stats.evicted, 0u);
  EXPECT_GT(stats.reclaimed_bytes, 0u);
  EXPECT_LE(stats.log_bytes, options.max_bytes);
}

TEST(PagedCacheTest, CorruptDataPageSurfacesAsQuarantinedMiss) {
  const std::string path = TempPath("pc_quarantine.cache");
  PersistentRecordCache::Options options;
  options.page_size = kSmallPage;
  {
    auto cache =
        PersistentRecordCache::Open(path, CacheMode::kReadWrite, kFp, options);
    ASSERT_TRUE(cache.ok());
    for (int i = 0; i < 6; ++i) {
      const StoredRecord r = MakeRecord(kFp, "q" + std::to_string(i), i);
      (*cache)->Insert(r.key, r.features, r.eval);
    }
    ASSERT_TRUE((*cache)->Flush().ok());
  }
  // Page 2 is the first data page at this scale; wound its payload.
  FlipBit(path, 2 * kSmallPage + PageFile::kPageHeaderSize + 3, 1);
  auto cache =
      PersistentRecordCache::Open(path, CacheMode::kRead, kFp, options);
  ASSERT_TRUE(cache.ok()) << cache.status().ToString();
  size_t hits = 0;
  for (int i = 0; i < 6; ++i) {
    StoredRecord out;
    if ((*cache)->Get(kFp, "q" + std::to_string(i), &out)) {
      ExpectRecordEq(out, MakeRecord(kFp, "q" + std::to_string(i), i));
      ++hits;
    }
  }
  EXPECT_LT(hits, 6u);
  EXPECT_GT((*cache)->stats().quarantined, 0u);
}

#else  // _WIN32

TEST(PagedStoreTest, UnsupportedOnWindows) {
  auto file = PageFile::Open("anywhere.pg", false);
  EXPECT_EQ(file.status().code(), StatusCode::kUnimplemented);
}

#endif  // _WIN32

}  // namespace
}  // namespace modis
