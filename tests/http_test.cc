/// Protocol fault-injection and QoS battery of the HTTP/1.1 front door
/// (src/service/http.h) and its transport integration: the incremental
/// parser (byte-at-a-time delivery, chunked framing, pipelining, every
/// size cap), truncation at each byte boundary and single-bit-flip fuzz
/// over the head — the parser must end in a complete request, a typed
/// 4xx/5xx, or "need more bytes", never crash —, the same abuse replayed
/// over real sockets (the host survives, answers what it can with typed
/// errors, and leaks no session thread), the endpoint router, Prometheus
/// exposition parity with the `"metrics"` wire verb, cross-transport
/// answer identity (unix line-JSON == TCP line-JSON == HTTP), and
/// tenant rate limiting surfacing as 429 + Retry-After. The
/// `sanitize-thread` CI job runs this suite under ThreadSanitizer.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "service/discovery_service.h"
#include "service/http.h"
#include "service/json.h"
#include "service/metrics.h"
#include "service/qos.h"
#include "service/transport.h"
#include "service/wire.h"

namespace modis {
namespace {

namespace fs = std::filesystem;

constexpr double kRowScale = 0.4;

std::string TempPath(const std::string& name) {
  const fs::path path = fs::path(::testing::TempDir()) / name;
  fs::remove(path);
  fs::remove(fs::path(path.string() + ".compact"));
  return path.string();
}

Endpoint UnixEndpoint(const std::string& name) {
  Endpoint endpoint;
  endpoint.kind = Endpoint::Kind::kUnix;
  endpoint.path = TempPath(name);
  return endpoint;
}

Endpoint TcpAnyPort() {
  Endpoint endpoint;
  endpoint.kind = Endpoint::Kind::kTcp;
  endpoint.host = "127.0.0.1";
  endpoint.port = 0;  // Resolved at bind.
  return endpoint;
}

/// The canonical test query (same shape as tests/transport_test.cc).
DiscoveryRequest MakeRequest(const std::string& variant) {
  DiscoveryRequest request;
  request.task = "T2";
  request.variant = variant;
  request.epsilon = 0.25;
  request.budget = 40;
  request.maxl = 2;
  request.measures = {"f1", "acc", "fisher", "mi"};
  return request;
}

DiscoveryService::Options SmallServiceOptions() {
  DiscoveryService::Options options;
  options.sessions = 2;
  options.queue_capacity = 16;
  options.valuation_threads = 2;
  options.task_row_scale = kRowScale;
  return options;
}

/// An in-process discovery host speaking BOTH dialects on every
/// endpoint: the line handler plus the HTTP router behind the sniffer.
class HttpHost {
 public:
  explicit HttpHost(
      DiscoveryService::Options service_options = SmallServiceOptions(),
      LineServer::Options server_options = LineServer::Options())
      : service_(service_options),
        server_(
            [this](const std::string& line) {
              return HandleServiceLine(&service_, line);
            },
            server_options, service_.metrics()) {
    server_.set_http_handler([this](const HttpRequest& request) {
      return RouteHttpRequest(&service_, request);
    });
  }

  ~HttpHost() { Stop(); }

  Status Listen(const Endpoint& endpoint) { return server_.Listen(endpoint); }

  void Start() {
    serving_ = std::thread([this] { server_.Serve(); });
  }

  void Stop() {
    server_.RequestStop();
    if (serving_.joinable()) serving_.join();
  }

  DiscoveryService& service() { return service_; }
  LineServer& server() { return server_; }
  const Endpoint& endpoint(size_t i = 0) const {
    return server_.endpoints().at(i);
  }

 private:
  DiscoveryService service_;
  LineServer server_;
  std::thread serving_;
};

// ------------------------------------------------- minimal HTTP client

struct HttpReply {
  int status = 0;
  std::vector<std::pair<std::string, std::string>> headers;  // Lowercased.
  std::string body;

  const std::string* FindHeader(const std::string& lower_name) const {
    for (const auto& [name, value] : headers) {
      if (name == lower_name) return &value;
    }
    return nullptr;
  }
};

std::string ToLowerCopy(std::string text) {
  for (char& c : text) {
    if (c >= 'A' && c <= 'Z') c = char(c - 'A' + 'a');
  }
  return text;
}

/// Reads one Content-Length-framed response. `carry` holds bytes beyond
/// the previous response on the same connection (pipelining).
Result<HttpReply> ReadHttpReply(ClientChannel* channel, std::string* carry) {
  size_t head_end;
  for (;;) {
    head_end = carry->find("\r\n\r\n");
    if (head_end != std::string::npos) break;
    auto chunk = channel->ReceiveRaw();
    if (!chunk.ok()) return chunk.status();
    if (chunk->empty()) {
      return Status::IoError("connection closed before the header end");
    }
    *carry += *chunk;
  }
  HttpReply reply;
  const size_t line_end = carry->find("\r\n");
  const std::string status_line = carry->substr(0, line_end);
  if (status_line.rfind("HTTP/1.1 ", 0) != 0 || status_line.size() < 12) {
    return Status::InvalidArgument("bad status line: " + status_line);
  }
  reply.status = std::atoi(status_line.c_str() + 9);
  size_t content_length = 0;
  size_t pos = line_end + 2;
  while (pos < head_end) {
    const size_t end = carry->find("\r\n", pos);
    const std::string line = carry->substr(pos, end - pos);
    pos = end + 2;
    const size_t colon = line.find(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument("bad header line: " + line);
    }
    std::string name = ToLowerCopy(line.substr(0, colon));
    std::string value = line.substr(colon + 1);
    while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
      value.erase(value.begin());
    }
    if (name == "content-length") {
      content_length = size_t(std::strtoull(value.c_str(), nullptr, 10));
    }
    reply.headers.emplace_back(std::move(name), std::move(value));
  }
  carry->erase(0, head_end + 4);
  while (carry->size() < content_length) {
    auto chunk = channel->ReceiveRaw();
    if (!chunk.ok()) return chunk.status();
    if (chunk->empty()) return Status::IoError("connection closed mid-body");
    *carry += *chunk;
  }
  reply.body = carry->substr(0, content_length);
  carry->erase(0, content_length);
  return reply;
}

std::string HttpGetText(const std::string& path,
                        const std::string& extra = "") {
  return "GET " + path + " HTTP/1.1\r\nHost: test\r\n" + extra + "\r\n";
}

std::string HttpPostText(const std::string& path, const std::string& body,
                         const std::string& extra = "") {
  return "POST " + path + " HTTP/1.1\r\nHost: test\r\n" + extra +
         "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n" + body;
}

/// One request/response exchange on a fresh connection.
Result<HttpReply> HttpRoundTrip(const Endpoint& endpoint,
                                const std::string& wire) {
  MODIS_ASSIGN_OR_RETURN(ClientChannel channel,
                         ClientChannel::Connect(endpoint));
  MODIS_RETURN_IF_ERROR(channel.SendRaw(wire));
  std::string carry;
  return ReadHttpReply(&channel, &carry);
}

// The typed statuses the front door may answer a malformed stream with.
bool IsTypedParserError(int status) {
  return status == 400 || status == 413 || status == 414 || status == 431 ||
         status == 501 || status == 505;
}

// --------------------------------------------------------- parser units

HttpParser::Limits TinyLimits() {
  HttpParser::Limits limits;
  limits.max_request_line_bytes = 128;
  limits.max_header_bytes = 256;
  limits.max_headers = 8;
  limits.max_body_bytes = 512;
  return limits;
}

TEST(HttpParserTest, ParsesRequestDeliveredOneByteAtATime) {
  const std::string wire =
      "POST /v1/query HTTP/1.1\r\n"
      "Host: example\r\n"
      "X-Api-Key: gold-key\r\n"
      "Content-Length: 11\r\n"
      "\r\n"
      "hello world";
  HttpParser parser;
  for (size_t i = 0; i < wire.size(); ++i) {
    ASSERT_FALSE(parser.has_error()) << "at byte " << i;
    EXPECT_EQ(parser.has_request(), false) << "complete early at byte " << i;
    parser.Feed(&wire[i], 1);
  }
  ASSERT_TRUE(parser.has_request());
  const HttpRequest request = parser.TakeRequest();
  EXPECT_EQ(request.method, "POST");
  EXPECT_EQ(request.target, "/v1/query");
  EXPECT_EQ(request.version_minor, 1);
  EXPECT_TRUE(request.keep_alive);
  EXPECT_EQ(request.body, "hello world");
  ASSERT_NE(request.FindHeader("x-api-key"), nullptr);
  EXPECT_EQ(*request.FindHeader("x-api-key"), "gold-key");
  EXPECT_FALSE(parser.has_request());
  EXPECT_FALSE(parser.has_error());
}

TEST(HttpParserTest, ParsesChunkedBodyWithExtensionsAndTrailers) {
  const std::string wire =
      "POST / HTTP/1.1\r\n"
      "Transfer-Encoding: chunked\r\n"
      "\r\n"
      "6;ext=1\r\n"
      "hello \r\n"
      "5\r\n"
      "world\r\n"
      "0\r\n"
      "X-Trailer: ignored\r\n"
      "\r\n";
  // Whole-buffer and byte-at-a-time delivery must agree.
  for (const size_t step : {wire.size(), size_t(1)}) {
    HttpParser parser;
    for (size_t i = 0; i < wire.size(); i += step) {
      parser.Feed(wire.data() + i, std::min(step, wire.size() - i));
    }
    ASSERT_TRUE(parser.has_request()) << "step " << step;
    const HttpRequest request = parser.TakeRequest();
    EXPECT_EQ(request.body, "hello world");
    EXPECT_EQ(request.FindHeader("x-trailer"), nullptr)
        << "trailers must be discarded";
  }
}

TEST(HttpParserTest, PipelinedRequestsComeOutInOrder) {
  HttpParser parser;
  parser.Feed(
      "GET /healthz HTTP/1.1\r\n\r\n"
      "POST /v1/query HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi"
      "GET /metrics HTTP/1.1\r\n\r\n");
  ASSERT_TRUE(parser.has_request());
  EXPECT_EQ(parser.TakeRequest().target, "/healthz");
  ASSERT_TRUE(parser.has_request());
  const HttpRequest second = parser.TakeRequest();
  EXPECT_EQ(second.target, "/v1/query");
  EXPECT_EQ(second.body, "hi");
  ASSERT_TRUE(parser.has_request());
  EXPECT_EQ(parser.TakeRequest().target, "/metrics");
  EXPECT_FALSE(parser.has_request());
  EXPECT_FALSE(parser.has_error());
}

TEST(HttpParserTest, KeepAliveDefaultsByVersionAndConnectionOverrides) {
  struct Case {
    const char* head;
    bool keep_alive;
  };
  const Case cases[] = {
      {"GET / HTTP/1.1\r\n\r\n", true},
      {"GET / HTTP/1.0\r\n\r\n", false},
      {"GET / HTTP/1.1\r\nConnection: close\r\n\r\n", false},
      {"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n", true},
      {"GET / HTTP/1.1\r\nConnection: foo, Close\r\n\r\n", false},
  };
  for (const Case& c : cases) {
    HttpParser parser;
    parser.Feed(c.head, std::strlen(c.head));
    ASSERT_TRUE(parser.has_request()) << c.head;
    EXPECT_EQ(parser.TakeRequest().keep_alive, c.keep_alive) << c.head;
  }
}

TEST(HttpParserTest, ToleratesBoundedLeadingBlankLines) {
  HttpParser ok;
  ok.Feed("\r\n\r\nGET / HTTP/1.1\r\n\r\n");
  ASSERT_TRUE(ok.has_request());

  HttpParser bad;
  bad.Feed("\r\n\r\n\r\n\r\n\r\n\r\nGET / HTTP/1.1\r\n\r\n");
  EXPECT_TRUE(bad.has_error());
  EXPECT_EQ(bad.error_status(), 400);
}

TEST(HttpParserTest, RejectsMalformedRequestLinesWithTypedStatus) {
  struct Case {
    const char* wire;
    int status;
  };
  const Case cases[] = {
      {"GET /\r\n\r\n", 400},                    // No version.
      {"GET / HTTP/2.0\r\n\r\n", 505},           // Wrong major.
      {"GET / HTTP/1.x\r\n\r\n", 400},           // Malformed version.
      {"GET / HTTPS1.1\r\n\r\n", 400},           // Not HTTP/.
      {"GET noslash HTTP/1.1\r\n\r\n", 400},     // Not origin-form.
      {"G@T / HTTP/1.1\r\n\r\n", 400},           // Method not a token.
      {" / HTTP/1.1\r\n\r\n", 400},              // Empty method.
  };
  for (const Case& c : cases) {
    HttpParser parser;
    parser.Feed(c.wire, std::strlen(c.wire));
    ASSERT_TRUE(parser.has_error()) << c.wire;
    EXPECT_EQ(parser.error_status(), c.status) << c.wire;
    EXPECT_FALSE(parser.has_request());
    // Sticky: further bytes cannot resurrect the stream.
    parser.Feed("GET / HTTP/1.1\r\n\r\n");
    EXPECT_TRUE(parser.has_error()) << c.wire;
    EXPECT_FALSE(parser.has_request()) << c.wire;
  }
}

TEST(HttpParserTest, RejectsFramingAmbiguityAndBadHeaders) {
  struct Case {
    const char* wire;
    int status;
  };
  const Case cases[] = {
      // Content-Length + Transfer-Encoding: the smuggling vector.
      {"POST / HTTP/1.1\r\nContent-Length: 2\r\n"
       "Transfer-Encoding: chunked\r\n\r\n",
       400},
      {"POST / HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n", 501},
      {"POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\n",
       400},
      {"POST / HTTP/1.1\r\nContent-Length: 2x\r\n\r\n", 400},
      {"POST / HTTP/1.1\r\nContent-Length: -2\r\n\r\n", 400},
      {"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n", 400},
      {"GET / HTTP/1.1\r\n: empty-name\r\n\r\n", 400},
      {"GET / HTTP/1.1\r\nBad Name: x\r\n\r\n", 400},
      {"GET / HTTP/1.1\r\nA: 1\r\n  folded\r\n\r\n", 400},  // Obs-fold.
  };
  for (const Case& c : cases) {
    HttpParser parser;
    parser.Feed(c.wire, std::strlen(c.wire));
    ASSERT_TRUE(parser.has_error()) << c.wire;
    EXPECT_EQ(parser.error_status(), c.status) << c.wire;
  }
}

TEST(HttpParserTest, RejectsMalformedChunkedFraming) {
  const char* head = "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
  struct Case {
    const char* rest;
    int status;
  };
  const Case cases[] = {
      {"zz\r\nhello\r\n0\r\n\r\n", 400},     // Non-hex size.
      {"\r\nhello\r\n0\r\n\r\n", 400},       // Empty size line.
      {"5\r\nhelloXX0\r\n\r\n", 400},        // Data not CRLF-terminated.
      {"5\r\nhello\rX0\r\n\r\n", 400},       // CR without LF.
  };
  for (const Case& c : cases) {
    HttpParser parser;
    parser.Feed(head, std::strlen(head));
    parser.Feed(c.rest, std::strlen(c.rest));
    ASSERT_TRUE(parser.has_error()) << c.rest;
    EXPECT_EQ(parser.error_status(), c.status) << c.rest;
  }
}

TEST(HttpParserTest, EnforcesEverySizeCapWithItsOwnStatus) {
  const HttpParser::Limits limits = TinyLimits();
  {
    HttpParser parser(limits);
    parser.Feed("GET /" + std::string(limits.max_request_line_bytes, 'a') +
                " HTTP/1.1\r\n\r\n");
    ASSERT_TRUE(parser.has_error());
    EXPECT_EQ(parser.error_status(), 414);
  }
  {
    // An unterminated request line beyond the cap fails without ever
    // seeing a newline — the cap cannot be dodged by withholding LF.
    HttpParser parser(limits);
    parser.Feed(std::string(limits.max_request_line_bytes + 2, 'a'));
    ASSERT_TRUE(parser.has_error());
    EXPECT_EQ(parser.error_status(), 414);
  }
  {
    HttpParser parser(limits);
    parser.Feed("GET / HTTP/1.1\r\nX: " +
                std::string(limits.max_header_bytes, 'b') + "\r\n\r\n");
    ASSERT_TRUE(parser.has_error());
    EXPECT_EQ(parser.error_status(), 431);
  }
  {
    HttpParser parser(limits);
    std::string wire = "GET / HTTP/1.1\r\n";
    for (size_t i = 0; i <= limits.max_headers; ++i) {
      wire += "H" + std::to_string(i) + ": v\r\n";
    }
    wire += "\r\n";
    parser.Feed(wire);
    ASSERT_TRUE(parser.has_error());
    EXPECT_EQ(parser.error_status(), 431);
  }
  {
    HttpParser parser(limits);
    parser.Feed("POST / HTTP/1.1\r\nContent-Length: " +
                std::to_string(limits.max_body_bytes + 1) + "\r\n\r\n");
    ASSERT_TRUE(parser.has_error());
    EXPECT_EQ(parser.error_status(), 413);
  }
  {
    // Chunked bodies hit the same cap cumulatively.
    HttpParser parser(limits);
    std::string wire = "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
    const std::string chunk(64, 'c');
    for (size_t sent = 0; sent <= limits.max_body_bytes; sent += chunk.size()) {
      wire += "40\r\n" + chunk + "\r\n";  // 0x40 == 64.
    }
    wire += "0\r\n\r\n";
    parser.Feed(wire);
    ASSERT_TRUE(parser.has_error());
    EXPECT_EQ(parser.error_status(), 413);
  }
}

/// A prefix of a valid request must never be an error and never a
/// complete request: truncation at every byte boundary.
TEST(HttpParserTest, TruncationAtEveryByteIsNeitherErrorNorRequest) {
  const std::string wire =
      "POST /v1/query HTTP/1.1\r\n"
      "Host: h\r\n"
      "Content-Length: 5\r\n"
      "\r\n"
      "12345";
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    HttpParser parser;
    parser.Feed(wire.data(), cut);
    EXPECT_FALSE(parser.has_error())
        << "prefix of a valid request errored at byte " << cut << ": "
        << parser.error_message();
    EXPECT_FALSE(parser.has_request()) << "complete early at byte " << cut;
    // Feeding the remainder always completes it.
    parser.Feed(wire.data() + cut, wire.size() - cut);
    ASSERT_TRUE(parser.has_request()) << "stuck after resume at byte " << cut;
    EXPECT_EQ(parser.TakeRequest().body, "12345");
  }
}

/// Single-bit-flip fuzz over the request line and headers: every
/// mutation ends in a complete request, a typed error, or a wait for
/// more bytes — never a crash (ASan/TSan make this a real check).
TEST(HttpParserTest, SingleBitFlipFuzzOverHeadTerminatesTyped) {
  const std::string head =
      "POST /v1/query HTTP/1.1\r\n"
      "Host: h\r\n"
      "Content-Length: 5\r\n"
      "\r\n";
  const std::string wire = head + "12345";
  for (size_t i = 0; i < head.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = wire;
      mutated[i] = char(uint8_t(mutated[i]) ^ uint8_t(1u << bit));
      HttpParser parser;
      parser.Feed(mutated);
      if (parser.has_error()) {
        EXPECT_TRUE(IsTypedParserError(parser.error_status()))
            << "byte " << i << " bit " << bit << " -> untyped status "
            << parser.error_status();
      } else if (parser.has_request()) {
        (void)parser.TakeRequest();  // Benign mutation (e.g. case flip).
      }
      // Else: the mutation grew the framing (Content-Length digit flip);
      // the parser is waiting for bytes that never come — fine.
    }
  }
}

// ----------------------------------------------------------- sniffing

TEST(SniffProtocolTest, ClassifiesPrefixes) {
  EXPECT_EQ(SniffProtocol(""), ProtocolGuess::kNeedMoreBytes);
  EXPECT_EQ(SniffProtocol("G"), ProtocolGuess::kNeedMoreBytes);
  EXPECT_EQ(SniffProtocol("GET"), ProtocolGuess::kNeedMoreBytes);
  EXPECT_EQ(SniffProtocol("GET "), ProtocolGuess::kHttp);
  EXPECT_EQ(SniffProtocol("GET /metrics"), ProtocolGuess::kHttp);
  EXPECT_EQ(SniffProtocol("POST /v1/query"), ProtocolGuess::kHttp);
  EXPECT_EQ(SniffProtocol("OPTIONS"), ProtocolGuess::kNeedMoreBytes);
  EXPECT_EQ(SniffProtocol("OPTIONS "), ProtocolGuess::kHttp);
  EXPECT_EQ(SniffProtocol("{\"task\":\"T2\"}"), ProtocolGuess::kLineJson);
  EXPECT_EQ(SniffProtocol("GETX"), ProtocolGuess::kLineJson);
  EXPECT_EQ(SniffProtocol("get "), ProtocolGuess::kLineJson);  // Lowercase.
}

// ------------------------------------------------------ endpoint router

TEST(HttpRouterTest, ServesQueryHealthzMetricsAndTypedErrors) {
  DiscoveryService::Options options = SmallServiceOptions();
  options.default_cache_path = TempPath("http_router.rlog");
  HttpHost host(options);
  ASSERT_TRUE(host.Listen(UnixEndpoint("http_router.sock")).ok());
  host.Start();

  // POST /v1/query answers the canonical query.
  const std::string body = SerializeDiscoveryRequest(MakeRequest("bi"));
  auto query = HttpRoundTrip(host.endpoint(), HttpPostText("/v1/query", body));
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_EQ(query->status, 200);
  ASSERT_NE(query->FindHeader("content-type"), nullptr);
  EXPECT_EQ(*query->FindHeader("content-type"), "application/json");
  auto parsed = ParseDiscoveryResponse(query->body);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_FALSE(parsed->skyline.empty());

  // GET /healthz.
  auto health = HttpRoundTrip(host.endpoint(), HttpGetText("/healthz"));
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health->status, 200);
  auto health_doc = JsonValue::Parse(health->body);
  ASSERT_TRUE(health_doc.ok());
  EXPECT_TRUE(health_doc->GetBool("ok", false));
  EXPECT_FALSE(health_doc->GetBool("draining", true));

  // GET /metrics is Prometheus exposition.
  auto metrics = HttpRoundTrip(host.endpoint(), HttpGetText("/metrics"));
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_EQ(metrics->status, 200);
  ASSERT_NE(metrics->FindHeader("content-type"), nullptr);
  EXPECT_EQ(*metrics->FindHeader("content-type"),
            "text/plain; version=0.0.4; charset=utf-8");
  EXPECT_NE(metrics->body.find("modis_served_total 1"), std::string::npos)
      << metrics->body.substr(0, 512);

  // Unknown path -> 404; wrong method -> 405 with Allow; bad body -> 400.
  auto missing = HttpRoundTrip(host.endpoint(), HttpGetText("/nope"));
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status, 404);
  auto wrong = HttpRoundTrip(host.endpoint(), HttpGetText("/v1/query"));
  ASSERT_TRUE(wrong.ok());
  EXPECT_EQ(wrong->status, 405);
  ASSERT_NE(wrong->FindHeader("allow"), nullptr);
  EXPECT_EQ(*wrong->FindHeader("allow"), "POST");
  auto bad = HttpRoundTrip(host.endpoint(),
                           HttpPostText("/v1/query", "this is not json"));
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->status, 400);
  auto bad_doc = JsonValue::Parse(bad->body);
  ASSERT_TRUE(bad_doc.ok());
  EXPECT_FALSE(bad_doc->GetBool("ok", true));
  EXPECT_EQ(bad_doc->GetString("code", ""), "InvalidArgument");

  host.Stop();
  const MetricsSnapshot snapshot = host.service().SnapshotMetrics();
  EXPECT_EQ(snapshot.connections_active, 0u);
  EXPECT_EQ(snapshot.http_requests, 6u);
  EXPECT_EQ(snapshot.http_errors, 3u);
}

TEST(HttpRouterTest, KeepAliveServesPipelinedRequestsInOrder) {
  HttpHost host;
  ASSERT_TRUE(host.Listen(UnixEndpoint("http_pipeline.sock")).ok());
  host.Start();

  auto channel = ClientChannel::Connect(host.endpoint());
  ASSERT_TRUE(channel.ok());
  // Three pipelined requests in one write; responses come back in order
  // on the same connection.
  ASSERT_TRUE(channel
                  ->SendRaw(HttpGetText("/healthz") + HttpGetText("/metrics") +
                            HttpGetText("/healthz"))
                  .ok());
  std::string carry;
  auto first = ReadHttpReply(&*channel, &carry);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->status, 200);
  EXPECT_NE(first->body.find("draining"), std::string::npos);
  auto second = ReadHttpReply(&*channel, &carry);
  ASSERT_TRUE(second.ok());
  EXPECT_NE(second->body.find("modis_connections_opened_total"),
            std::string::npos);
  auto third = ReadHttpReply(&*channel, &carry);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third->status, 200);

  host.Stop();
  const MetricsSnapshot snapshot = host.service().SnapshotMetrics();
  EXPECT_EQ(snapshot.http_requests, 3u);
  EXPECT_EQ(snapshot.connections_active, 0u);
  EXPECT_EQ(snapshot.connections_opened, 1u);
}

// ------------------------------------------------- socket fault battery

TEST(HttpFaultTest, TruncatedRequestsAtEveryByteLeakNothing) {
  HttpHost host;
  ASSERT_TRUE(host.Listen(UnixEndpoint("http_trunc.sock")).ok());
  host.Start();

  const std::string wire = HttpPostText(
      "/v1/query", "{\"verb\":\"discover\",\"task\":\"T2\"}");
  size_t opened = 0;
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    auto channel = ClientChannel::Connect(host.endpoint());
    ASSERT_TRUE(channel.ok()) << "at byte " << cut;
    ASSERT_TRUE(channel->SendRaw(wire.substr(0, cut)).ok()) << cut;
    channel->Close();  // Mid-request disconnect at every boundary.
    ++opened;
  }

  // The host is unharmed: a full request still answers.
  auto probe = HttpRoundTrip(host.endpoint(), HttpGetText("/healthz"));
  ASSERT_TRUE(probe.ok()) << probe.status().ToString();
  EXPECT_EQ(probe->status, 200);
  ++opened;

  // No session thread leaks: the drain returns with nothing active.
  host.Stop();
  const MetricsSnapshot snapshot = host.service().SnapshotMetrics();
  EXPECT_EQ(snapshot.connections_active, 0u);
  EXPECT_EQ(snapshot.connections_opened, opened);
}

TEST(HttpFaultTest, SingleBitFlipFuzzOverHeadNeverKillsTheHost) {
  HttpHost host;
  ASSERT_TRUE(host.Listen(UnixEndpoint("http_fuzz.sock")).ok());
  host.Start();

  const std::string head = HttpGetText("/healthz");
  for (size_t i = 0; i < head.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = head;
      mutated[i] = char(uint8_t(mutated[i]) ^ uint8_t(1u << bit));
      auto channel = ClientChannel::Connect(host.endpoint());
      ASSERT_TRUE(channel.ok()) << "byte " << i << " bit " << bit;
      ASSERT_TRUE(channel->SendRaw(mutated).ok());
      // Don't wait for a response: some mutations leave the server
      // legitimately waiting for more bytes (a flipped newline grows
      // the framing). Whatever state the session is in, the abrupt
      // disconnect must never take the host down.
      channel->Close();
    }
  }

  auto probe = HttpRoundTrip(host.endpoint(), HttpGetText("/healthz"));
  ASSERT_TRUE(probe.ok()) << probe.status().ToString();
  EXPECT_EQ(probe->status, 200);

  host.Stop();
  const MetricsSnapshot snapshot = host.service().SnapshotMetrics();
  EXPECT_EQ(snapshot.connections_active, 0u);
}

TEST(HttpFaultTest, OversizedAndMalformedStreamsGetTypedErrorsThenClose) {
  LineServer::Options server_options;
  server_options.http.max_request_line_bytes = 256;
  server_options.http.max_header_bytes = 512;
  server_options.http.max_body_bytes = 1024;
  HttpHost host(SmallServiceOptions(), server_options);
  ASSERT_TRUE(host.Listen(UnixEndpoint("http_oversize.sock")).ok());
  host.Start();

  struct Case {
    std::string wire;
    int status;
  };
  const std::vector<Case> cases = {
      {"GET /" + std::string(300, 'a') + " HTTP/1.1\r\n\r\n", 414},
      {"GET / HTTP/1.1\r\nX: " + std::string(600, 'b') + "\r\n\r\n", 431},
      {"POST / HTTP/1.1\r\nContent-Length: 4096\r\n\r\n", 413},
      {"POST /v1/query HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
       "zz\r\n",
       400},
      {"GET / HTTP/2.0\r\n\r\n", 505},
      {"POST / HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n", 501},
  };
  for (const Case& c : cases) {
    auto channel = ClientChannel::Connect(host.endpoint());
    ASSERT_TRUE(channel.ok());
    ASSERT_TRUE(channel->SendRaw(c.wire).ok());
    std::string carry;
    auto reply = ReadHttpReply(&*channel, &carry);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(reply->status, c.status) << c.wire.substr(0, 60);
    ASSERT_NE(reply->FindHeader("connection"), nullptr);
    EXPECT_EQ(*reply->FindHeader("connection"), "close");
    // The connection is closed after the typed error: the stream cannot
    // be resynced.
    auto after = channel->ReceiveRaw();
    ASSERT_TRUE(after.ok());
    EXPECT_TRUE(after->empty()) << "connection still open after "
                                << c.status;
  }

  host.Stop();
  const MetricsSnapshot snapshot = host.service().SnapshotMetrics();
  EXPECT_EQ(snapshot.connections_active, 0u);
  EXPECT_EQ(snapshot.http_errors, cases.size());
}

TEST(HttpFaultTest, MidPipelineDisconnectCompletesWhatWasRead) {
  HttpHost host;
  ASSERT_TRUE(host.Listen(UnixEndpoint("http_middisc.sock")).ok());
  host.Start();

  {
    auto channel = ClientChannel::Connect(host.endpoint());
    ASSERT_TRUE(channel.ok());
    // Three pipelined requests; read one response, then vanish.
    ASSERT_TRUE(channel
                    ->SendRaw(HttpGetText("/healthz") +
                              HttpGetText("/metrics") +
                              HttpGetText("/healthz"))
                    .ok());
    std::string carry;
    auto first = ReadHttpReply(&*channel, &carry);
    ASSERT_TRUE(first.ok());
    EXPECT_EQ(first->status, 200);
    channel->Close();
  }

  auto probe = HttpRoundTrip(host.endpoint(), HttpGetText("/healthz"));
  ASSERT_TRUE(probe.ok()) << probe.status().ToString();
  EXPECT_EQ(probe->status, 200);

  host.Stop();
  const MetricsSnapshot snapshot = host.service().SnapshotMetrics();
  EXPECT_EQ(snapshot.connections_active, 0u);
}

// ----------------------------------------- line-JSON and HTTP share ports

TEST(HttpTransportTest, BothDialectsShareOneTcpPort) {
  HttpHost host;
  ASSERT_TRUE(host.Listen(TcpAnyPort()).ok());
  host.Start();

  // Line-JSON on the port.
  auto line_channel = ClientChannel::Connect(host.endpoint());
  ASSERT_TRUE(line_channel.ok());
  auto line_reply = line_channel->RoundTrip("{\"verb\":\"metrics\"}");
  ASSERT_TRUE(line_reply.ok()) << line_reply.status().ToString();
  auto doc = JsonValue::Parse(line_reply.value());
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(doc->GetBool("ok", false));

  // HTTP on the same port.
  auto http_reply = HttpRoundTrip(host.endpoint(), HttpGetText("/healthz"));
  ASSERT_TRUE(http_reply.ok()) << http_reply.status().ToString();
  EXPECT_EQ(http_reply->status, 200);

  host.Stop();
  const MetricsSnapshot snapshot = host.service().SnapshotMetrics();
  EXPECT_EQ(snapshot.lines_served, 1u);
  EXPECT_EQ(snapshot.http_requests, 1u);
  EXPECT_EQ(snapshot.connections_active, 0u);
}

// ------------------------------------------------ cross-transport identity

void ExpectSameSkylines(const DiscoveryResponse& a,
                        const DiscoveryResponse& b) {
  ASSERT_EQ(a.skyline.size(), b.skyline.size());
  ASSERT_FALSE(a.skyline.empty());
  auto sorted = [](const DiscoveryResponse& r) {
    std::vector<DiscoverySkylineRow> rows = r.skyline;
    std::sort(rows.begin(), rows.end(),
              [](const DiscoverySkylineRow& x, const DiscoverySkylineRow& y) {
                return x.signature < y.signature;
              });
    return rows;
  };
  const auto rows_a = sorted(a);
  const auto rows_b = sorted(b);
  for (size_t i = 0; i < rows_a.size(); ++i) {
    EXPECT_EQ(rows_a[i].signature, rows_b[i].signature);
    ASSERT_EQ(rows_a[i].raw.size(), rows_b[i].raw.size());
    for (size_t j = 0; j < rows_a[i].raw.size(); ++j) {
      EXPECT_EQ(rows_a[i].raw[j], rows_b[i].raw[j]);
      EXPECT_EQ(rows_a[i].normalized[j], rows_b[i].normalized[j]);
    }
  }
}

/// The cross-transport identity gate: the same warm query over unix
/// line-JSON, TCP line-JSON, and HTTP returns byte-identical skyline
/// rows, with exact_evals == 0 on every warm path.
TEST(HttpTransportTest, WarmAnswersAreIdenticalAcrossAllThreeTransports) {
  DiscoveryService::Options options = SmallServiceOptions();
  options.default_cache_path = TempPath("http_identity.rlog");
  HttpHost host(options);
  ASSERT_TRUE(host.Listen(UnixEndpoint("http_identity.sock")).ok());
  ASSERT_TRUE(host.Listen(TcpAnyPort()).ok());
  host.Start();

  const std::string request = SerializeDiscoveryRequest(MakeRequest("bi"));

  // Cold once (over unix) to warm the record cache.
  auto cold_channel = ClientChannel::Connect(host.endpoint(0));
  ASSERT_TRUE(cold_channel.ok());
  auto cold_reply = cold_channel->RoundTrip(request);
  ASSERT_TRUE(cold_reply.ok());
  auto cold = ParseDiscoveryResponse(cold_reply.value());
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_GT(cold->exact_evals, 0u);

  // Warm via unix line-JSON.
  auto unix_reply = cold_channel->RoundTrip(request);
  ASSERT_TRUE(unix_reply.ok());
  auto warm_unix = ParseDiscoveryResponse(unix_reply.value());
  ASSERT_TRUE(warm_unix.ok()) << warm_unix.status().ToString();

  // Warm via TCP line-JSON.
  auto tcp_channel = ClientChannel::Connect(host.endpoint(1));
  ASSERT_TRUE(tcp_channel.ok());
  auto tcp_reply = tcp_channel->RoundTrip(request);
  ASSERT_TRUE(tcp_reply.ok());
  auto warm_tcp = ParseDiscoveryResponse(tcp_reply.value());
  ASSERT_TRUE(warm_tcp.ok()) << warm_tcp.status().ToString();

  // Warm via HTTP on the TCP port.
  auto http_reply =
      HttpRoundTrip(host.endpoint(1), HttpPostText("/v1/query", request));
  ASSERT_TRUE(http_reply.ok()) << http_reply.status().ToString();
  ASSERT_EQ(http_reply->status, 200);
  auto warm_http = ParseDiscoveryResponse(http_reply->body);
  ASSERT_TRUE(warm_http.ok()) << warm_http.status().ToString();

  EXPECT_EQ(warm_unix->exact_evals, 0u);
  EXPECT_EQ(warm_tcp->exact_evals, 0u);
  EXPECT_EQ(warm_http->exact_evals, 0u);
  ExpectSameSkylines(*cold, *warm_unix);
  ExpectSameSkylines(*warm_unix, *warm_tcp);
  ExpectSameSkylines(*warm_tcp, *warm_http);

  host.Stop();
}

// -------------------------------------------------- exposition parity

/// Finds `series` (a metric name, optionally with a label set, e.g.
/// `modis_tenant_shed_total{tenant="gold"}`) at the start of a line and
/// returns its sample value.
double PromValue(const std::string& exposition, const std::string& series,
                 bool* found) {
  size_t pos = 0;
  while ((pos = exposition.find(series, pos)) != std::string::npos) {
    const bool at_line_start = pos == 0 || exposition[pos - 1] == '\n';
    const size_t after = pos + series.size();
    if (at_line_start && after < exposition.size() &&
        exposition[after] == ' ') {
      *found = true;
      return std::strtod(exposition.c_str() + after + 1, nullptr);
    }
    pos = after;
  }
  *found = false;
  return 0.0;
}

/// Every line of a 0.0.4 exposition is a comment (`# HELP`/`# TYPE`) or
/// a `name[{labels}] value` sample with a parseable value.
void ExpectValidExposition(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  size_t samples = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      EXPECT_TRUE(line.rfind("# HELP ", 0) == 0 ||
                  line.rfind("# TYPE ", 0) == 0)
          << line;
      continue;
    }
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    ASSERT_GT(space, 0u) << line;
    const char first = line[0];
    EXPECT_TRUE((first >= 'a' && first <= 'z') ||
                (first >= 'A' && first <= 'Z') || first == '_')
        << line;
    const std::string value = line.substr(space + 1);
    char* end = nullptr;
    (void)std::strtod(value.c_str(), &end);
    EXPECT_TRUE(end != nullptr && *end == '\0') << line;
    ++samples;
  }
  EXPECT_GT(samples, 0u);
}

/// The parity contract: GET /metrics and the `{"verb":"metrics"}` wire
/// snapshot agree value-for-value over the SAME quiesced snapshot.
TEST(ExpositionParityTest, PrometheusAgreesWithWireMetricsValueForValue) {
  DiscoveryService::Options options = SmallServiceOptions();
  TenantSpec gold;
  gold.name = "gold";
  gold.api_key = "gold-key";
  gold.rate_per_s = 1000.0;
  gold.burst = 1000.0;
  gold.priority = 10;
  TenantSpec bronze;
  bronze.name = "bronze";
  bronze.api_key = "bronze-key";
  bronze.rate_per_s = 0.0;
  bronze.burst = 2.0;
  options.tenants = {gold, bronze};
  DiscoveryService service(options);

  DiscoveryRequest request = MakeRequest("bi");
  request.api_key = "gold-key";
  ASSERT_TRUE(service.Answer(request).ok());
  // Exhaust bronze's bucket so rate-limit counters are non-zero too.
  request.api_key = "bronze-key";
  ASSERT_TRUE(service.Answer(request).ok());
  ASSERT_TRUE(service.Answer(request).ok());
  auto limited = service.Answer(request);
  ASSERT_FALSE(limited.ok());
  EXPECT_EQ(limited.status().code(), StatusCode::kResourceExhausted);
  EXPECT_GT(RetryAfterSeconds(limited.status()), 0.0);

  const MetricsSnapshot snapshot = service.SnapshotMetrics();
  const std::string exposition = PrometheusExposition(snapshot);
  ExpectValidExposition(exposition);

  auto wire = JsonValue::Parse(SerializeServiceMetrics(snapshot));
  ASSERT_TRUE(wire.ok());
  const JsonValue* metrics = wire->Get("metrics");
  ASSERT_NE(metrics, nullptr);

  for (const ScalarMetricDesc& desc : ScalarMetricDescriptors()) {
    bool found = false;
    const double prom = PromValue(exposition, desc.prom_name, &found);
    EXPECT_TRUE(found) << desc.prom_name;
    EXPECT_EQ(prom, metrics->GetNumber(desc.json_name, -1.0))
        << desc.json_name;
  }
  {
    bool found = false;
    EXPECT_EQ(PromValue(exposition, "modis_draining", &found), 0.0);
    EXPECT_TRUE(found);
  }
  // Every descriptor-table histogram — including the trace-derived
  // modis_phase_* family — agrees value-for-value across both surfaces.
  for (const HistogramMetricDesc& desc : HistogramMetricDescriptors()) {
    const JsonValue* json = metrics->Get(desc.json_name);
    ASSERT_NE(json, nullptr) << desc.json_name;
    bool found = false;
    EXPECT_EQ(
        PromValue(exposition, std::string(desc.prom_name) + "_count", &found),
        json->GetNumber("count", -1.0))
        << desc.json_name;
    EXPECT_TRUE(found) << desc.prom_name;
    EXPECT_DOUBLE_EQ(
        PromValue(exposition, std::string(desc.prom_name) + "_sum", &found),
        json->GetNumber("sum_ms", -1.0))
        << desc.json_name;
    EXPECT_TRUE(found) << desc.prom_name;
  }
  {
    // Phase histograms fill from the always-on recorder: all three served
    // queries must have landed in every phase family.
    bool found = false;
    EXPECT_EQ(PromValue(exposition, "modis_phase_respond_ms_count", &found),
              3.0);
    EXPECT_TRUE(found);
    EXPECT_EQ(PromValue(exposition, "modis_phase_train_ms_count", &found),
              3.0);
    EXPECT_TRUE(found);
  }
  const JsonValue* tenants = metrics->Get("tenants");
  ASSERT_NE(tenants, nullptr);
  ASSERT_TRUE(tenants->is_array());
  ASSERT_EQ(tenants->AsArray().size(), 3u);  // gold, bronze, anonymous.
  for (const JsonValue& tenant : tenants->AsArray()) {
    const std::string name = tenant.GetString("name", "");
    for (const TenantMetricDesc& desc : TenantMetricDescriptors()) {
      bool found = false;
      const double prom =
          PromValue(exposition,
                    std::string(desc.prom_name) + "{tenant=\"" + name + "\"}",
                    &found);
      EXPECT_TRUE(found) << desc.prom_name << " for " << name;
      EXPECT_EQ(prom, tenant.GetNumber(desc.json_name, -1.0))
          << desc.json_name << " for " << name;
    }
  }
  // Spot-check the counters are what this scenario must have produced.
  bool found = false;
  EXPECT_EQ(PromValue(exposition, "modis_qos_rate_limited_total", &found),
            1.0);
  EXPECT_EQ(
      PromValue(exposition, "modis_tenant_admitted_total{tenant=\"gold\"}",
                &found),
      1.0);
  EXPECT_EQ(
      PromValue(exposition,
                "modis_tenant_rate_limited_total{tenant=\"bronze\"}", &found),
      1.0);
}

// ------------------------------------------------------ tracing over HTTP

/// The HTTP face of the tracing tentpole: `X-Modis-Request-Id` on every
/// answered query (matching the body's `request_id`), `X-Modis-Trace: 1`
/// switching on the inline span tree, and `GET /v1/debug/traces` serving
/// the ring as Chrome trace_event JSON that names BOTH queries — the
/// recorder is always on; the header only gates the inline echo.
TEST(HttpTraceTest, TraceHeaderRequestIdAndDebugEndpoint) {
  DiscoveryService::Options options = SmallServiceOptions();
  options.default_cache_path = TempPath("http_trace.rlog");
  HttpHost host(options);
  ASSERT_TRUE(host.Listen(UnixEndpoint("http_trace.sock")).ok());
  host.Start();

  const std::string body = SerializeDiscoveryRequest(MakeRequest("bi"));

  // An untraced query carries a request id in header and body but no
  // span tree.
  auto plain = HttpRoundTrip(host.endpoint(), HttpPostText("/v1/query", body));
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  ASSERT_EQ(plain->status, 200);
  const std::string* plain_id = plain->FindHeader("x-modis-request-id");
  ASSERT_NE(plain_id, nullptr);
  auto plain_parsed = ParseDiscoveryResponse(plain->body);
  ASSERT_TRUE(plain_parsed.ok()) << plain_parsed.status().ToString();
  EXPECT_EQ(plain_parsed->request_id, *plain_id);
  EXPECT_TRUE(plain_parsed->trace_spans.empty());

  // X-Modis-Trace: 1 turns on the inline span tree (warm-path answer
  // identity under tracing is covered in tests/service_test.cc).
  auto traced = HttpRoundTrip(
      host.endpoint(), HttpPostText("/v1/query", body, "X-Modis-Trace: 1\r\n"));
  ASSERT_TRUE(traced.ok()) << traced.status().ToString();
  ASSERT_EQ(traced->status, 200);
  const std::string* traced_id = traced->FindHeader("x-modis-request-id");
  ASSERT_NE(traced_id, nullptr);
  EXPECT_NE(*traced_id, *plain_id);
  auto traced_parsed = ParseDiscoveryResponse(traced->body);
  ASSERT_TRUE(traced_parsed.ok()) << traced_parsed.status().ToString();
  EXPECT_EQ(traced_parsed->request_id, *traced_id);
  ASSERT_FALSE(traced_parsed->trace_spans.empty());
  EXPECT_EQ(traced_parsed->trace_spans[0].name, "query");

  // GET /v1/debug/traces serves Chrome trace_event JSON whose process
  // metadata names both request ids.
  auto debug = HttpRoundTrip(host.endpoint(), HttpGetText("/v1/debug/traces"));
  ASSERT_TRUE(debug.ok()) << debug.status().ToString();
  EXPECT_EQ(debug->status, 200);
  ASSERT_NE(debug->FindHeader("content-type"), nullptr);
  EXPECT_EQ(*debug->FindHeader("content-type"), "application/json");
  auto debug_doc = JsonValue::Parse(debug->body);
  ASSERT_TRUE(debug_doc.ok()) << debug_doc.status().ToString();
  EXPECT_TRUE(debug_doc->GetBool("ok", false));
  const JsonValue* events = debug_doc->Get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  bool saw_plain = false;
  bool saw_traced = false;
  for (const JsonValue& event : events->AsArray()) {
    if (event.GetString("ph", "") != "M") continue;
    const JsonValue* args = event.Get("args");
    ASSERT_NE(args, nullptr);
    const std::string process = args->GetString("name", "");
    if (process.find(*plain_id) != std::string::npos) saw_plain = true;
    if (process.find(*traced_id) != std::string::npos) saw_traced = true;
  }
  EXPECT_TRUE(saw_plain) << "untraced queries must still reach the ring";
  EXPECT_TRUE(saw_traced);

  // The debug surface is GET-only.
  auto wrong =
      HttpRoundTrip(host.endpoint(), HttpPostText("/v1/debug/traces", "{}"));
  ASSERT_TRUE(wrong.ok());
  EXPECT_EQ(wrong->status, 405);
  ASSERT_NE(wrong->FindHeader("allow"), nullptr);
  EXPECT_EQ(*wrong->FindHeader("allow"), "GET");

  host.Stop();
}

// --------------------------------------------------------- QoS over HTTP

TEST(HttpQosTest, RateLimitedTenantGets429WithRetryAfter) {
  DiscoveryService::Options options = SmallServiceOptions();
  TenantSpec bronze;
  bronze.name = "bronze";
  bronze.api_key = "bronze-key";
  bronze.rate_per_s = 0.0;  // Never refills: deterministic burst-then-429.
  bronze.burst = 2.0;
  options.tenants = {bronze};
  HttpHost host(options);
  ASSERT_TRUE(host.Listen(UnixEndpoint("http_qos.sock")).ok());
  host.Start();

  const std::string body = SerializeDiscoveryRequest(MakeRequest("bi"));
  const std::string wire =
      HttpPostText("/v1/query", body, "X-Api-Key: bronze-key\r\n");
  for (int i = 0; i < 2; ++i) {
    auto reply = HttpRoundTrip(host.endpoint(), wire);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(reply->status, 200) << "request " << i;
  }
  auto limited = HttpRoundTrip(host.endpoint(), wire);
  ASSERT_TRUE(limited.ok()) << limited.status().ToString();
  EXPECT_EQ(limited->status, 429);
  ASSERT_NE(limited->FindHeader("retry-after"), nullptr);
  EXPECT_GE(std::atoi(limited->FindHeader("retry-after")->c_str()), 1);
  auto doc = JsonValue::Parse(limited->body);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->GetString("code", ""), "ResourceExhausted");
  EXPECT_GT(doc->GetNumber("retry_after_s", 0.0), 0.0);

  // An unknown key lands on the unlimited anonymous tenant: still served.
  auto anonymous = HttpRoundTrip(
      host.endpoint(), HttpPostText("/v1/query", body, "X-Api-Key: who\r\n"));
  ASSERT_TRUE(anonymous.ok());
  EXPECT_EQ(anonymous->status, 200);

  host.Stop();
  const MetricsSnapshot snapshot = host.service().SnapshotMetrics();
  EXPECT_EQ(snapshot.qos_rate_limited, 1u);
  ASSERT_EQ(snapshot.tenants.size(), 2u);
  EXPECT_EQ(snapshot.tenants[0].name, "bronze");
  EXPECT_EQ(snapshot.tenants[0].admitted, 2u);
  EXPECT_EQ(snapshot.tenants[0].rate_limited, 1u);
  EXPECT_EQ(snapshot.tenants[0].served, 2u);
  EXPECT_EQ(snapshot.tenants[0].in_flight, 0u);
  EXPECT_EQ(snapshot.tenants[1].name, "anonymous");
  EXPECT_EQ(snapshot.tenants[1].admitted, 1u);
}

}  // namespace
}  // namespace modis
