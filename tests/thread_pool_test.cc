#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace modis {
namespace {

TEST(ThreadPoolTest, ExecutesSubmittedTasks) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);

  std::mutex mu;
  std::condition_variable cv;
  int done = 0;
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&] {
      std::lock_guard<std::mutex> lock(mu);
      ++done;
      cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done == 16; });
  EXPECT_EQ(done, 16);
}

TEST(ThreadPoolTest, DrainsPendingTasksOnDestruction) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      pool.Submit([&done] { ++done; });
    }
  }  // Destructor joins after the queue is drained.
  EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPoolTest, ZeroThreadsFallsBackToHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  Status s = ParallelFor(&pool, 0, hits.size(),
                         [&](size_t i) { ++hits[i]; });
  EXPECT_TRUE(s.ok());
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, RespectsBeginOffset) {
  ThreadPool pool(2);
  std::vector<int> hits(10, 0);
  Status s = ParallelFor(&pool, 7, 10, [&](size_t i) { hits[i] = 1; });
  EXPECT_TRUE(s.ok());
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i], i >= 7 ? 1 : 0) << i;
  }
}

TEST(ParallelForTest, EmptyAndInvertedRangesAreNoOps) {
  ThreadPool pool(2);
  int calls = 0;
  EXPECT_TRUE(ParallelFor(&pool, 5, 5, [&](size_t) { ++calls; }).ok());
  EXPECT_TRUE(ParallelFor(&pool, 9, 3, [&](size_t) { ++calls; }).ok());
  EXPECT_EQ(calls, 0);
}

TEST(ParallelForTest, NullPoolRunsInlineInOrder) {
  std::vector<size_t> order;
  Status s = ParallelFor(nullptr, 0, 5,
                         [&](size_t i) { order.push_back(i); });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, SingleWorkerPoolRunsInlineInOrder) {
  ThreadPool pool(1);
  std::vector<size_t> order;
  Status s = ParallelFor(&pool, 2, 6,
                         [&](size_t i) { order.push_back(i); });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(order, (std::vector<size_t>{2, 3, 4, 5}));
}

TEST(ParallelForTest, PropagatesExceptionsAsStatus) {
  ThreadPool pool(4);
  Status s = ParallelFor(&pool, 0, 50, [](size_t i) {
    if (i == 13) throw std::runtime_error("boom at 13");
  });
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_NE(s.message().find("boom at 13"), std::string::npos);
}

TEST(ParallelForTest, PropagatesExceptionsInline) {
  Status s = ParallelFor(nullptr, 0, 4, [](size_t i) {
    if (i == 2) throw std::runtime_error("inline boom");
  });
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("inline boom"), std::string::npos);
}

TEST(ParallelForTest, NonStdExceptionIsCaptured) {
  Status s = ParallelFor(nullptr, 0, 2, [](size_t) { throw 42; });
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInternal);
}

TEST(ParallelForTest, OverlapsBlockedTasks) {
  // Four 100ms waits over four workers must overlap — even a single
  // hardware thread interleaves sleeps — so the wall clock stays well
  // under the 400ms a serial loop would take.
  ThreadPool pool(4);
  const auto start = std::chrono::steady_clock::now();
  Status s = ParallelFor(&pool, 0, 4, [](size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  });
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_TRUE(s.ok());
  EXPECT_LT(elapsed.count(), 350);
}

TEST(ParallelForTest, LargeRangeSumsCorrectly) {
  ThreadPool pool(4);
  std::vector<int64_t> out(5000, 0);
  Status s = ParallelFor(&pool, 0, out.size(), [&](size_t i) {
    out[i] = static_cast<int64_t>(i) * 2;
  });
  EXPECT_TRUE(s.ok());
  int64_t sum = std::accumulate(out.begin(), out.end(), int64_t{0});
  const int64_t n = static_cast<int64_t>(out.size());
  EXPECT_EQ(sum, n * (n - 1));
}

}  // namespace
}  // namespace modis
