/// Kill-injection battery over the multi-process host
/// (docs/MULTIPROCESS.md): real worker processes draining a real
/// shared-memory job ring, SIGKILLed at every lifecycle stage —
/// right after claiming ("claimed"), inside the training phase
/// ("mid_train"), at the cache commit boundary ("pre_commit"), and
/// inside Complete() while holding the ring mutex ("mid_response", the
/// robust-mutex owner-death case). After every kill the battery
/// asserts the crash-isolation contract:
///
///   * no accepted query is lost — every Submit() resolves;
///   * no query is answered twice — ring completions match submissions;
///   * the skyline is byte-identical to an undisturbed in-process run;
///   * the cache file reloads clean after the kill;
///   * the ring never wedges (every wait here is bounded).
///
/// The battery runs over both cache engines (page_size 0 = v1 log,
/// 4096 = paged). Worker processes are this very binary re-exec'ed
/// with --worker-role (which is why this suite owns main()); the kill
/// points are armed through WorkerOptions::crash_at on the FIRST
/// incarnation of worker 0 only — its respawn runs disarmed, exactly
/// like a real crash that does not reproduce.

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "service/discovery_service.h"
#include "service/shm_ring.h"
#include "service/wire.h"
#include "service/worker.h"
#include "storage/persistent_record_cache.h"

namespace modis {
namespace {

namespace fs = std::filesystem;

constexpr double kRowScale = 0.4;

/// Absolute path of this test binary, for re-exec'ing worker children.
std::string g_self_exe;

std::string TempPath(const std::string& name) {
  const fs::path path = fs::path(::testing::TempDir()) / name;
  fs::remove(path);
  fs::remove(fs::path(path.string() + ".compact"));
  return path.string();
}

/// The canonical deterministic query (same shape as service_test.cc):
/// T2 at a small budget, wall-clock measures excluded.
DiscoveryRequest MakeRequest() {
  DiscoveryRequest request;
  request.task = "T2";
  request.variant = "bi";
  request.epsilon = 0.25;
  request.budget = 40;
  request.maxl = 2;
  request.measures = {"f1", "acc", "fisher", "mi"};
  return request;
}

DiscoveryService::Options WorkerServiceOptions(const std::string& cache,
                                               uint32_t page_size) {
  DiscoveryService::Options options;
  options.sessions = 1;
  options.queue_capacity = 4;
  options.valuation_threads = 2;
  options.task_row_scale = kRowScale;
  options.default_cache_path = cache;
  options.cache_page_size = page_size;
  return options;
}

// ------------------------------------------------------- worker role

struct WorkerRoleArgs {
  std::string ring;
  uint32_t index = 0;
  std::string cache;
  uint32_t page_size = 0;
  std::string crash_at;
};

/// Entry point of a spawned worker child (`--worker-role`): build a
/// shared-cache DiscoveryService and drain the ring, with the crash
/// point armed. Runs until the coordinator stops the ring or the armed
/// SIGKILL fires.
int RunWorkerRole(const WorkerRoleArgs& args) {
  DiscoveryService::Options options =
      WorkerServiceOptions(args.cache, args.page_size);
  options.shared_cache = true;
  options.request_id_prefix = "q-w" + std::to_string(args.index) + "-";
  DiscoveryService service(options);
  WorkerOptions worker_options;
  worker_options.ring_path = args.ring;
  worker_options.worker_index = args.index;
  worker_options.poll_ms = 50;
  worker_options.crash_at = args.crash_at;
  const Status ran = RunWorkerLoop(&service, worker_options);
  return ran.ok() ? 0 : 1;
}

// ---------------------------------------------------------- harness

/// One coordinator-side pool whose workers are this binary re-exec'ed.
/// `crash_at` arms the kill point on worker 0's first incarnation only.
class PoolHarness {
 public:
  Status Start(const std::string& tag, uint32_t workers, uint32_t page_size,
               const std::string& crash_at) {
    ring_path_ = TempPath("crash_ring_" + tag + ".shm");
    cache_path_ = TempPath("crash_cache_" + tag + ".bin");
    page_size_ = page_size;
    crash_at_ = crash_at;
    spawn_counts_.assign(workers, 0);

    WorkerPool::Options options;
    options.workers = workers;
    options.ring_path = ring_path_;
    options.ring.slots = 8;
    options.respawn_ms = 50;  // Keep the battery fast.
    options.stable_ms = 0;    // A kill-injected death is not "unstable".
    options.spawn = [this](uint32_t worker) { return Spawn(worker); };
    return WorkerPool::Start(options, &pool_);
  }

  /// Serializes `request`, runs it through the ring, and returns the
  /// parsed response. Every wait is bounded: a wedged ring fails the
  /// test instead of hanging it.
  Result<DiscoveryResponse> Query(const DiscoveryRequest& request) {
    std::string response_line;
    const Status submitted =
        pool_->Submit(SerializeDiscoveryRequest(request), &response_line);
    if (!submitted.ok()) return submitted;
    return ParseDiscoveryResponse(response_line);
  }

  WorkerPool* pool() { return pool_.get(); }
  const std::string& cache_path() const { return cache_path_; }

  void Stop() {
    if (pool_) pool_->Stop();
  }

  ~PoolHarness() { Stop(); }

 private:
  pid_t Spawn(uint32_t worker) {
    std::string crash;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (worker == 0 && spawn_counts_[worker] == 0) crash = crash_at_;
      ++spawn_counts_[worker];
    }
    std::vector<std::string> storage = {
        g_self_exe,
        "--worker-role",
        "--ring", ring_path_,
        "--index", std::to_string(worker),
        "--cache", cache_path_,
        "--page-size", std::to_string(page_size_),
    };
    if (!crash.empty()) {
      storage.push_back("--crash-at");
      storage.push_back(crash);
    }
    std::vector<char*> argv;
    argv.reserve(storage.size() + 1);
    for (std::string& arg : storage) argv.push_back(arg.data());
    argv.push_back(nullptr);
    const pid_t pid = ::fork();
    if (pid == 0) {
      ::execv(g_self_exe.c_str(), argv.data());
      _exit(127);
    }
    return pid;
  }

  std::unique_ptr<WorkerPool> pool_;
  std::string ring_path_;
  std::string cache_path_;
  uint32_t page_size_ = 0;
  std::string crash_at_;
  std::mutex mu_;
  std::vector<int> spawn_counts_;
};

// -------------------------------------------------------- assertions

void ExpectSameSkylines(const DiscoveryResponse& a,
                        const DiscoveryResponse& b) {
  ASSERT_EQ(a.skyline.size(), b.skyline.size());
  ASSERT_FALSE(a.skyline.empty());
  for (size_t i = 0; i < a.skyline.size(); ++i) {
    EXPECT_EQ(a.skyline[i].signature, b.skyline[i].signature);
    EXPECT_EQ(a.skyline[i].level, b.skyline[i].level);
    EXPECT_EQ(a.skyline[i].rows, b.skyline[i].rows);
    EXPECT_EQ(a.skyline[i].cols, b.skyline[i].cols);
    ASSERT_EQ(a.skyline[i].raw.size(), b.skyline[i].raw.size());
    for (size_t j = 0; j < a.skyline[i].raw.size(); ++j) {
      EXPECT_DOUBLE_EQ(a.skyline[i].raw[j], b.skyline[i].raw[j]);
      EXPECT_DOUBLE_EQ(a.skyline[i].normalized[j],
                       b.skyline[i].normalized[j]);
    }
  }
}

/// The undisturbed in-process reference: a plain DiscoveryService over
/// its own cache file, computed once per engine and memoized.
const DiscoveryResponse& ReferenceResponse(uint32_t page_size) {
  static std::map<uint32_t, DiscoveryResponse> memo;
  auto it = memo.find(page_size);
  if (it != memo.end()) return it->second;
  const std::string cache =
      TempPath("crash_reference_" + std::to_string(page_size) + ".bin");
  DiscoveryService service(WorkerServiceOptions(cache, page_size));
  auto response = service.Answer(MakeRequest());
  if (!response.ok()) {
    ADD_FAILURE() << "reference run failed: " << response.status().ToString();
    static const DiscoveryResponse kEmpty;
    return kEmpty;
  }
  return memo.emplace(page_size, std::move(response).value()).first->second;
}

/// After the pool stopped, the cache file must reload clean through the
/// normal exclusive open — a kill mid-publish never leaves a torn file.
void ExpectCacheReloadsClean(const std::string& path, uint32_t page_size) {
  if (!fs::exists(path)) return;  // A pre-train kill may leave no file.
  PersistentRecordCache::Options options;
  options.page_size = page_size;
  auto reopened = PersistentRecordCache::Open(path, CacheMode::kRead,
                                              /*fingerprint=*/0, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
}

// ----------------------------------------------------------- battery

struct CrashCase {
  const char* stage;
  bool owner_death;  // mid_response dies holding the ring mutex.
};

class WorkerCrashTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, CrashCase>> {};

/// THE battery: arm one kill point, run the canonical query into it,
/// and prove the pool heals — same answer, nothing lost, nothing
/// doubled, cache intact, ring live.
TEST_P(WorkerCrashTest, KilledWorkerNeverLosesOrForksAQuery) {
  const uint32_t page_size = std::get<0>(GetParam());
  const CrashCase crash = std::get<1>(GetParam());
  const std::string tag =
      std::string(crash.stage) + "_" + std::to_string(page_size);

  PoolHarness harness;
  // One worker: the armed incarnation must be the one that claims the
  // query, crashes at the injected stage, and is respawned disarmed.
  ASSERT_TRUE(
      harness.Start(tag, /*workers=*/1, page_size, crash.stage).ok());

  // The crash victim. Submit() resolves even though the first claim
  // dies: the supervisor requeues the job and the respawned worker
  // answers it. "No accepted query lost."
  auto crashed = harness.Query(MakeRequest());
  ASSERT_TRUE(crashed.ok()) << crashed.status().ToString();
  ExpectSameSkylines(crashed.value(), ReferenceResponse(page_size));

  // A follow-up query through the healed pool; warm path this time.
  auto warm = harness.Query(MakeRequest());
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  ExpectSameSkylines(warm.value(), ReferenceResponse(page_size));

  // The kill really happened and was really recovered.
  EXPECT_GE(harness.pool()->restarts_total(), 1u);
  const ShmRing::Stats stats = harness.pool()->ring()->SnapshotStats();
  EXPECT_EQ(stats.installed, 2u);
  EXPECT_EQ(stats.completed, 2u);  // Exactly one completion per query.
  EXPECT_GE(stats.requeued, 1u);
  EXPECT_EQ(stats.poisoned, 0u);
  EXPECT_EQ(stats.ready, 0u);
  EXPECT_EQ(stats.claimed, 0u);
  if (crash.owner_death) {
    EXPECT_GE(stats.owner_deaths, 1u);
  }

  harness.Stop();
  ExpectCacheReloadsClean(harness.cache_path(), page_size);
}

INSTANTIATE_TEST_SUITE_P(
    Stages, WorkerCrashTest,
    ::testing::Combine(
        ::testing::Values(0u, 4096u),
        ::testing::Values(CrashCase{"claimed", false},
                          CrashCase{"mid_train", false},
                          CrashCase{"pre_commit", false},
                          CrashCase{"mid_response", true})),
    [](const ::testing::TestParamInfo<WorkerCrashTest::ParamType>& info) {
      return std::string(std::get<1>(info.param).stage) + "_page" +
             std::to_string(std::get<0>(info.param));
    });

// --------------------------------------------- undisturbed pool runs

class WorkerPoolTest : public ::testing::TestWithParam<uint32_t> {};

/// Sanity floor under the battery: with no kill armed, the pool
/// answers exactly like the in-process service, cold and warm.
TEST_P(WorkerPoolTest, UndisturbedPoolMatchesInProcessAnswers) {
  const uint32_t page_size = GetParam();
  PoolHarness harness;
  ASSERT_TRUE(harness
                  .Start("plain_" + std::to_string(page_size),
                         /*workers=*/2, page_size, /*crash_at=*/"")
                  .ok());
  auto cold = harness.Query(MakeRequest());
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  ExpectSameSkylines(cold.value(), ReferenceResponse(page_size));
  auto warm = harness.Query(MakeRequest());
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  ExpectSameSkylines(warm.value(), ReferenceResponse(page_size));

  EXPECT_EQ(harness.pool()->restarts_total(), 0u);
  const ShmRing::Stats stats = harness.pool()->ring()->SnapshotStats();
  EXPECT_EQ(stats.installed, 2u);
  EXPECT_EQ(stats.completed, 2u);
  harness.Stop();
  ExpectCacheReloadsClean(harness.cache_path(), page_size);
}

/// The positive cross-process warm contract (the flip side of
/// storage_test's raw-open fail-fast): while the pool is LIVE, a
/// second query lands on the shared cache WARM — zero new trainings —
/// even when a different worker process answers it.
TEST_P(WorkerPoolTest, SecondQueryThroughLivePoolIsWarm) {
  const uint32_t page_size = GetParam();
  PoolHarness harness;
  ASSERT_TRUE(harness
                  .Start("warmup_" + std::to_string(page_size),
                         /*workers=*/2, page_size, /*crash_at=*/"")
                  .ok());
  auto cold = harness.Query(MakeRequest());
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_GT(cold.value().exact_evals, 0u);

  // Drive queries until a DIFFERENT worker index has answered one (the
  // request-id prefix carries the worker index), then check it was
  // warm: the second process saw the first one's published trainings.
  bool cross_worker_warm = false;
  for (int attempt = 0; attempt < 20 && !cross_worker_warm; ++attempt) {
    auto warm = harness.Query(MakeRequest());
    ASSERT_TRUE(warm.ok()) << warm.status().ToString();
    ExpectSameSkylines(warm.value(), ReferenceResponse(page_size));
    if (warm.value().request_id.rfind(cold.value().request_id.substr(0, 4),
                                      0) != 0) {
      EXPECT_EQ(warm.value().exact_evals, 0u)
          << "cross-process reader was cold: " << warm.value().request_id;
      cross_worker_warm = true;
    }
  }
  EXPECT_TRUE(cross_worker_warm)
      << "no query landed on a second worker in 20 attempts";
  harness.Stop();
}

INSTANTIATE_TEST_SUITE_P(Engines, WorkerPoolTest,
                         ::testing::Values(0u, 4096u),
                         [](const ::testing::TestParamInfo<uint32_t>& info) {
                           return "page" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace modis

int main(int argc, char** argv) {
  // Worker children re-exec this binary with --worker-role; peel that
  // mode off before gtest sees the flags.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--worker-role") == 0) {
      modis::WorkerRoleArgs args;
      for (int j = 1; j + 1 < argc; ++j) {
        const std::string flag = argv[j];
        if (flag == "--ring") args.ring = argv[j + 1];
        if (flag == "--index")
          args.index = static_cast<uint32_t>(std::stoul(argv[j + 1]));
        if (flag == "--cache") args.cache = argv[j + 1];
        if (flag == "--page-size")
          args.page_size = static_cast<uint32_t>(std::stoul(argv[j + 1]));
        if (flag == "--crash-at") args.crash_at = argv[j + 1];
      }
      return modis::RunWorkerRole(args);
    }
  }
  modis::g_self_exe = argv[0];
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
