#include <gtest/gtest.h>

#include "baselines/baselines.h"
#include "datagen/tasks.h"

namespace modis {
namespace {

struct BaselineFixture {
  TabularBench bench;
  std::unique_ptr<SupervisedEvaluator> evaluator;

  static BaselineFixture Make(BenchTaskId id = BenchTaskId::kHouse) {
    auto bench = MakeTabularBench(id, 0.4);
    EXPECT_TRUE(bench.ok());
    BaselineFixture f{std::move(bench).value(), nullptr};
    f.evaluator = f.bench.MakeEvaluator();
    return f;
  }
};

TEST(OriginalTest, EvaluatesUniversal) {
  auto f = BaselineFixture::Make();
  auto r = RunOriginal(f.bench.universal, f.evaluator.get());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->name, "Original");
  EXPECT_EQ(r->eval.raw.size(), f.bench.task.measures.size());
}

TEST(MetamTest, OutputContainsTargetAndImproves) {
  auto f = BaselineFixture::Make();
  MetamOptions opts;
  opts.utility_measure = 0;  // f1 for the house task.
  auto r = RunMetam(f.bench.lake, f.evaluator.get(), opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->name, "METAM");
  EXPECT_TRUE(r->dataset.schema().HasField(f.bench.task.target));
  // Greedy joins must never end worse (in utility) than the base table.
  auto base_eval = f.evaluator->Evaluate(f.bench.lake.tables[0]);
  ASSERT_TRUE(base_eval.ok());
  EXPECT_LE(r->eval.normalized[0], base_eval->normalized[0] + 1e-9);
}

TEST(MetamTest, MultiObjectiveVariantRuns) {
  auto f = BaselineFixture::Make();
  MetamOptions opts;
  opts.multi_objective = true;
  auto r = RunMetam(f.bench.lake, f.evaluator.get(), opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->name, "METAM-MO");
}

TEST(MetamTest, MaxJoinsBoundsSchema) {
  auto f = BaselineFixture::Make();
  MetamOptions opts;
  opts.max_joins = 1;
  auto r = RunMetam(f.bench.lake, f.evaluator.get(), opts);
  ASSERT_TRUE(r.ok());
  // At most the base schema plus one joined table.
  size_t max_cols = f.bench.lake.tables[0].num_cols();
  size_t widest = 0;
  for (size_t t = 1; t < f.bench.lake.tables.size(); ++t) {
    widest = std::max(widest, f.bench.lake.tables[t].num_cols() - 1);
  }
  EXPECT_LE(r->dataset.num_cols(), max_cols + widest);
}

TEST(StarmieTest, JoinsSimilarTables) {
  auto f = BaselineFixture::Make();
  auto r = RunStarmieLite(f.bench.lake, f.evaluator.get(), 0.05);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->name, "Starmie");
  // The shared key column makes every table similar -> everything joined.
  EXPECT_EQ(r->dataset.num_cols(), f.bench.universal.num_cols());
}

TEST(StarmieTest, HighThresholdKeepsBaseOnly) {
  auto f = BaselineFixture::Make();
  auto r = RunStarmieLite(f.bench.lake, f.evaluator.get(), 1.1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->dataset.num_cols(), f.bench.lake.tables[0].num_cols());
}

TEST(SkSfmTest, SelectsSubsetKeepingTarget) {
  auto f = BaselineFixture::Make();
  auto r = RunSkSfm(f.bench.universal, f.evaluator.get(),
                    f.bench.model.get());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->name, "SkSFM");
  EXPECT_LT(r->dataset.num_cols(), f.bench.universal.num_cols());
  EXPECT_TRUE(r->dataset.schema().HasField(f.bench.task.target));
  EXPECT_EQ(r->dataset.num_rows(), f.bench.universal.num_rows());
}

TEST(SkSfmTest, FeatureSelectionSpeedsTraining) {
  auto f = BaselineFixture::Make();
  auto original = RunOriginal(f.bench.universal, f.evaluator.get());
  auto selected = RunSkSfm(f.bench.universal, f.evaluator.get(),
                           f.bench.model.get());
  ASSERT_TRUE(original.ok() && selected.ok());
  // Fewer features -> lower raw training time (index of train_time in the
  // house measure vector is 4).
  const auto& names = f.bench.task.measures;
  size_t tt = 0;
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i].name == "train_time") tt = i;
  }
  EXPECT_LT(selected->eval.raw[tt], original->eval.raw[tt] * 1.2);
}

TEST(H2oFsTest, LinearSelectionWorksBothTasks) {
  for (BenchTaskId id : {BenchTaskId::kHouse, BenchTaskId::kAvocado}) {
    auto f = BaselineFixture::Make(id);
    auto r = RunH2oFs(f.bench.universal, f.evaluator.get());
    ASSERT_TRUE(r.ok()) << BenchTaskName(id);
    EXPECT_LE(r->dataset.num_cols(), f.bench.universal.num_cols());
    EXPECT_TRUE(r->dataset.schema().HasField(f.bench.task.target));
  }
}

TEST(HydraGanTest, AppendsSyntheticRows) {
  auto f = BaselineFixture::Make();
  const size_t base_rows = f.bench.lake.tables[0].num_rows();
  auto r = RunHydraGanLite(f.bench.lake, f.evaluator.get(), 100);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->name, "HydraGAN");
  EXPECT_EQ(r->dataset.num_rows(), base_rows + 100);
  EXPECT_EQ(r->dataset.num_cols(), f.bench.lake.tables[0].num_cols());
}

TEST(BaselinesTest, AllReportTiming) {
  auto f = BaselineFixture::Make();
  auto r = RunSkSfm(f.bench.universal, f.evaluator.get(), f.bench.model.get());
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r->seconds, 0.0);
}

}  // namespace
}  // namespace modis
