#include <gtest/gtest.h>

#include "table/csv.h"
#include "table/schema.h"
#include "table/table.h"
#include "table/value.h"

namespace modis {
namespace {

// ---------------------------------------------------------------- Value

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_EQ(Value(int64_t{3}).kind(), ValueKind::kInt);
  EXPECT_EQ(Value(2.5).kind(), ValueKind::kDouble);
  EXPECT_EQ(Value("x").kind(), ValueKind::kString);
  EXPECT_EQ(Value(int64_t{3}).AsInt(), 3);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDoubleExact(), 2.5);
  EXPECT_EQ(Value("abc").AsString(), "abc");
}

TEST(ValueTest, AsDoubleWidensInts) {
  EXPECT_DOUBLE_EQ(Value(int64_t{7}).AsDouble(), 7.0);
  EXPECT_DOUBLE_EQ(Value(7.5).AsDouble(), 7.5);
  EXPECT_TRUE(Value(int64_t{1}).IsNumeric());
  EXPECT_TRUE(Value(1.0).IsNumeric());
  EXPECT_FALSE(Value("1").IsNumeric());
  EXPECT_FALSE(Value().IsNumeric());
}

TEST(ValueTest, EqualityIsKindSensitive) {
  EXPECT_EQ(Value(int64_t{3}), Value(int64_t{3}));
  EXPECT_NE(Value(int64_t{3}), Value(3.0));
  EXPECT_EQ(Value(), Value());
  EXPECT_NE(Value("a"), Value("b"));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value("abc").Hash(), Value("abc").Hash());
  EXPECT_EQ(Value(int64_t{5}).Hash(), Value(int64_t{5}).Hash());
  EXPECT_NE(Value(int64_t{5}).Hash(), Value(5.0).Hash());
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value().ToString(), "");
  EXPECT_EQ(Value(int64_t{42}).ToString(), "42");
  EXPECT_EQ(Value("hi").ToString(), "hi");
}

TEST(ValueTest, OrderingIsTotal) {
  EXPECT_LT(Value(), Value(int64_t{0}));
  EXPECT_LT(Value(int64_t{1}), Value(int64_t{2}));
  EXPECT_LT(Value("a"), Value("b"));
}

// ---------------------------------------------------------------- Schema

TEST(SchemaTest, AddAndFind) {
  Schema s;
  ASSERT_TRUE(s.AddField({"a", ColumnType::kNumeric}).ok());
  ASSERT_TRUE(s.AddField({"b", ColumnType::kCategorical}).ok());
  EXPECT_EQ(s.num_fields(), 2u);
  EXPECT_EQ(s.FindField("a").value(), 0u);
  EXPECT_EQ(s.FindField("b").value(), 1u);
  EXPECT_FALSE(s.FindField("c").has_value());
}

TEST(SchemaTest, RejectsDuplicates) {
  Schema s;
  ASSERT_TRUE(s.AddField({"a", ColumnType::kNumeric}).ok());
  EXPECT_EQ(s.AddField({"a", ColumnType::kNumeric}).code(),
            StatusCode::kAlreadyExists);
}

TEST(SchemaTest, UnionMergesDisjointAndShared) {
  Schema a({{"x", ColumnType::kNumeric}, {"y", ColumnType::kNumeric}});
  Schema b({{"y", ColumnType::kNumeric}, {"z", ColumnType::kCategorical}});
  auto u = a.Union(b);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->num_fields(), 3u);
  EXPECT_TRUE(u->HasField("x"));
  EXPECT_TRUE(u->HasField("z"));
}

TEST(SchemaTest, UnionRejectsTypeConflict) {
  Schema a({{"x", ColumnType::kNumeric}});
  Schema b({{"x", ColumnType::kCategorical}});
  EXPECT_FALSE(a.Union(b).ok());
}

// ---------------------------------------------------------------- Table

Table SmallTable() {
  Table t(Schema({{"id", ColumnType::kNumeric},
                  {"name", ColumnType::kCategorical},
                  {"score", ColumnType::kNumeric}}));
  EXPECT_TRUE(t.AppendRow({Value(int64_t{1}), Value("a"), Value(0.5)}).ok());
  EXPECT_TRUE(t.AppendRow({Value(int64_t{2}), Value("b"), Value::Null()}).ok());
  EXPECT_TRUE(t.AppendRow({Value(int64_t{3}), Value("a"), Value(0.9)}).ok());
  return t;
}

TEST(TableTest, AppendAndAccess) {
  Table t = SmallTable();
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.num_cols(), 3u);
  EXPECT_EQ(t.At(1, 1).AsString(), "b");
  EXPECT_TRUE(t.At(1, 2).is_null());
  auto row = t.Row(2);
  EXPECT_EQ(row[0].AsInt(), 3);
}

TEST(TableTest, AppendRowRejectsWrongArity) {
  Table t = SmallTable();
  EXPECT_FALSE(t.AppendRow({Value(int64_t{4})}).ok());
}

TEST(TableTest, AddColumnChecksLengthAndName) {
  Table t = SmallTable();
  EXPECT_FALSE(t.AddColumn({"extra", ColumnType::kNumeric}, {Value(1.0)}).ok());
  EXPECT_FALSE(t.AddColumn({"id", ColumnType::kNumeric},
                           {Value(1.0), Value(2.0), Value(3.0)})
                   .ok());
  EXPECT_TRUE(t.AddColumn({"extra", ColumnType::kNumeric},
                          {Value(1.0), Value(2.0), Value(3.0)})
                  .ok());
  EXPECT_EQ(t.num_cols(), 4u);
}

TEST(TableTest, SelectRowsPreservesOrder) {
  Table t = SmallTable();
  Table s = t.SelectRows({2, 0});
  EXPECT_EQ(s.num_rows(), 2u);
  EXPECT_EQ(s.At(0, 0).AsInt(), 3);
  EXPECT_EQ(s.At(1, 0).AsInt(), 1);
}

TEST(TableTest, SelectColumnsProjects) {
  Table t = SmallTable();
  auto s = t.SelectColumns({2, 0});
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->num_cols(), 2u);
  EXPECT_EQ(s->schema().field(0).name, "score");
  EXPECT_EQ(s->num_rows(), 3u);
  EXPECT_FALSE(t.SelectColumns({9}).ok());
}

TEST(TableTest, SelectColumnsByName) {
  Table t = SmallTable();
  auto s = t.SelectColumnsByName({"name"});
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->num_cols(), 1u);
  EXPECT_FALSE(t.SelectColumnsByName({"nope"}).ok());
}

TEST(TableTest, NullFraction) {
  Table t = SmallTable();
  EXPECT_NEAR(t.NullFraction(), 1.0 / 9.0, 1e-12);
  Table empty;
  EXPECT_DOUBLE_EQ(empty.NullFraction(), 0.0);
}

TEST(TableTest, DistinctCountIgnoresNulls) {
  Table t = SmallTable();
  EXPECT_EQ(t.DistinctCount(1), 2u);  // "a", "b".
  EXPECT_EQ(t.DistinctCount(2), 2u);  // 0.5, 0.9 (null skipped).
}

// ------------------------------------------------------------ ActiveDomain

TEST(ActiveDomainTest, CollectsDistinctNonNull) {
  Table t = SmallTable();
  auto domains = ComputeActiveDomains(t);
  ASSERT_EQ(domains.size(), 3u);
  EXPECT_EQ(domains[1].size(), 2u);
  EXPECT_TRUE(domains[1].Contains(Value("a")));
  EXPECT_FALSE(domains[1].Contains(Value("z")));
  EXPECT_EQ(domains[2].size(), 2u);
}

TEST(ActiveDomainTest, MergesAcrossColumns) {
  ActiveDomain d;
  d.AddColumn({Value(int64_t{1}), Value(int64_t{2})});
  d.AddColumn({Value(int64_t{2}), Value(int64_t{3})});
  EXPECT_EQ(d.size(), 3u);
}

// ---------------------------------------------------------------- CSV

TEST(CsvTest, RoundTrip) {
  Table t = SmallTable();
  const std::string text = WriteCsvString(t);
  auto back = ReadCsvString(text);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), 3u);
  EXPECT_EQ(back->num_cols(), 3u);
  EXPECT_EQ(back->schema().field(0).name, "id");
  EXPECT_EQ(back->schema().field(0).type, ColumnType::kNumeric);
  EXPECT_EQ(back->schema().field(1).type, ColumnType::kCategorical);
  EXPECT_TRUE(back->At(1, 2).is_null());
}

TEST(CsvTest, TypeInference) {
  auto t = ReadCsvString("a,b\n1,x\n2.5,y\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->schema().field(0).type, ColumnType::kNumeric);
  EXPECT_EQ(t->schema().field(1).type, ColumnType::kCategorical);
  EXPECT_EQ(t->At(0, 0).kind(), ValueKind::kInt);
  EXPECT_EQ(t->At(1, 0).kind(), ValueKind::kDouble);
}

TEST(CsvTest, RejectsRaggedRows) {
  EXPECT_FALSE(ReadCsvString("a,b\n1\n").ok());
}

TEST(CsvTest, RejectsEmptyInput) { EXPECT_FALSE(ReadCsvString("").ok()); }

TEST(CsvTest, EmptyCellsBecomeNulls) {
  auto t = ReadCsvString("a,b\n1,\n,2\n");
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->At(0, 1).is_null());
  EXPECT_TRUE(t->At(1, 0).is_null());
}

TEST(CsvTest, FileRoundTrip) {
  Table t = SmallTable();
  const std::string path = ::testing::TempDir() + "/modis_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(t, path).ok());
  auto back = ReadCsvFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), t.num_rows());
}

TEST(CsvTest, MissingFileFails) {
  EXPECT_EQ(ReadCsvFile("/nonexistent/nope.csv").status().code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace modis
