#include <gtest/gtest.h>

#include <cmath>

#include "ml/dataset.h"
#include "ml/decision_tree.h"
#include "ml/feature_scores.h"
#include "ml/gradient_boosting.h"
#include "ml/linear.h"
#include "ml/metrics.h"
#include "ml/multi_output_gbm.h"
#include "ml/random_forest.h"

namespace modis {
namespace {

// ---------------------------------------------------------------- Metrics

TEST(MetricsTest, RegressionClosedForms) {
  std::vector<double> y{1, 2, 3};
  std::vector<double> p{1, 2, 5};
  EXPECT_NEAR(MeanSquaredError(y, p), 4.0 / 3.0, 1e-12);
  EXPECT_NEAR(RootMeanSquaredError(y, p), std::sqrt(4.0 / 3.0), 1e-12);
  EXPECT_NEAR(MeanAbsoluteError(y, p), 2.0 / 3.0, 1e-12);
}

TEST(MetricsTest, R2PerfectAndMeanPredictor) {
  std::vector<double> y{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(R2Score(y, y), 1.0);
  std::vector<double> mean_pred(4, 2.5);
  EXPECT_NEAR(R2Score(y, mean_pred), 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(R2Score({2, 2}, {1, 3}), 0.0);  // Zero-variance target.
}

TEST(MetricsTest, AccuracyCounts) {
  EXPECT_DOUBLE_EQ(Accuracy({0, 1, 1, 0}, {0, 1, 0, 0}), 0.75);
  EXPECT_DOUBLE_EQ(Accuracy({}, {}), 0.0);
}

TEST(MetricsTest, MacroPrf) {
  // Two classes; class 0: tp=2 fp=1 fn=0 -> p=2/3 r=1; class 1: tp=1 fp=0
  // fn=1 -> p=1 r=0.5.
  std::vector<int> y{0, 0, 1, 1};
  std::vector<int> p{0, 0, 0, 1};
  EXPECT_NEAR(MacroPrecision(y, p, 2), (2.0 / 3.0 + 1.0) / 2.0, 1e-12);
  EXPECT_NEAR(MacroRecall(y, p, 2), (1.0 + 0.5) / 2.0, 1e-12);
  const double f0 = 2 * (2.0 / 3.0) * 1.0 / (2.0 / 3.0 + 1.0);
  const double f1 = 2 * 1.0 * 0.5 / 1.5;
  EXPECT_NEAR(MacroF1(y, p, 2), (f0 + f1) / 2.0, 1e-12);
}

TEST(MetricsTest, BinaryAucPerfectAndRandom) {
  EXPECT_DOUBLE_EQ(BinaryAuc({0, 0, 1, 1}, {0.1, 0.2, 0.8, 0.9}), 1.0);
  EXPECT_DOUBLE_EQ(BinaryAuc({0, 0, 1, 1}, {0.9, 0.8, 0.2, 0.1}), 0.0);
  EXPECT_DOUBLE_EQ(BinaryAuc({0, 0, 1, 1}, {0.5, 0.5, 0.5, 0.5}), 0.5);
  EXPECT_DOUBLE_EQ(BinaryAuc({1, 1}, {0.5, 0.7}), 0.5);  // Single class.
}

TEST(MetricsTest, BinaryAucHandlesTies) {
  // Scores: pos {0.5, 0.9}, neg {0.5, 0.1}; tie contributes 0.5.
  EXPECT_NEAR(BinaryAuc({0, 1, 0, 1}, {0.1, 0.5, 0.5, 0.9}), 0.875, 1e-12);
}

TEST(MetricsTest, MacroAucAveragesClasses) {
  std::vector<int> y{0, 1, 2};
  std::vector<std::vector<double>> proba{
      {0.8, 0.1, 0.1}, {0.1, 0.8, 0.1}, {0.1, 0.1, 0.8}};
  EXPECT_DOUBLE_EQ(MacroAuc(y, proba), 1.0);
}

TEST(MetricsTest, RankingMetrics) {
  std::vector<std::vector<int>> rel{{1, 2}};
  std::vector<std::vector<int>> ranked{{1, 3, 2, 4}};
  EXPECT_DOUBLE_EQ(PrecisionAtK(rel, ranked, 2), 0.5);
  EXPECT_DOUBLE_EQ(RecallAtK(rel, ranked, 2), 0.5);
  EXPECT_DOUBLE_EQ(PrecisionAtK(rel, ranked, 4), 0.5);
  EXPECT_DOUBLE_EQ(RecallAtK(rel, ranked, 4), 1.0);
  // NDCG@2: DCG = 1/log2(2) = 1; IDCG = 1 + 1/log2(3).
  EXPECT_NEAR(NdcgAtK(rel, ranked, 2), 1.0 / (1.0 + 1.0 / std::log2(3.0)),
              1e-12);
}

TEST(MetricsTest, RankingPerfectOrder) {
  std::vector<std::vector<int>> rel{{0, 1, 2}};
  std::vector<std::vector<int>> ranked{{0, 1, 2, 3, 4}};
  EXPECT_DOUBLE_EQ(NdcgAtK(rel, ranked, 3), 1.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK(rel, ranked, 3), 1.0);
}

// ---------------------------------------------------------------- Bridge

Table BridgeTable() {
  Table t(Schema({{"id", ColumnType::kNumeric},
                  {"f", ColumnType::kNumeric},
                  {"c", ColumnType::kCategorical},
                  {"y", ColumnType::kNumeric}}));
  EXPECT_TRUE(t.AppendRow({Value(int64_t{0}), Value(1.0), Value("a"),
                           Value(10.0)}).ok());
  EXPECT_TRUE(t.AppendRow({Value(int64_t{1}), Value::Null(), Value("b"),
                           Value(20.0)}).ok());
  EXPECT_TRUE(t.AppendRow({Value(int64_t{2}), Value(3.0), Value::Null(),
                           Value(30.0)}).ok());
  EXPECT_TRUE(t.AppendRow({Value(int64_t{3}), Value(5.0), Value("a"),
                           Value::Null()}).ok());
  return t;
}

TEST(BridgeTest, DropsNullTargetsAndImputes) {
  BridgeOptions opts;
  opts.exclude = {"id"};
  auto ds = TableToDataset(BridgeTable(), "y", TaskKind::kRegression, opts);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->num_rows(), 3u);  // Null-target row dropped.
  EXPECT_EQ(ds->num_features(), 2u);
  // Null f imputed with mean of {1, 3} = 2.
  EXPECT_DOUBLE_EQ(ds->x.At(1, 0), 2.0);
  // Categorical: a->1, b->2, null->0.
  EXPECT_DOUBLE_EQ(ds->x.At(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(ds->x.At(1, 1), 2.0);
  EXPECT_DOUBLE_EQ(ds->x.At(2, 1), 0.0);
}

TEST(BridgeTest, ClassificationEncodesLabels) {
  auto ds = TableToDataset(BridgeTable(), "c", TaskKind::kClassification, {});
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->num_rows(), 3u);  // Null-c row dropped.
  EXPECT_EQ(ds->num_classes, 2);
  EXPECT_EQ(ds->class_labels.size(), 2u);
}

TEST(BridgeTest, MissingTargetFails) {
  EXPECT_FALSE(
      TableToDataset(BridgeTable(), "zzz", TaskKind::kRegression, {}).ok());
}

TEST(BridgeTest, SelectRowsSubsets) {
  auto ds = TableToDataset(BridgeTable(), "y", TaskKind::kRegression, {});
  ASSERT_TRUE(ds.ok());
  MlDataset sub = ds->SelectRows({2, 0});
  EXPECT_EQ(sub.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(sub.y[0], 30.0);
  EXPECT_DOUBLE_EQ(sub.y[1], 10.0);
}

TEST(BridgeTest, TrainTestSplitPartitions) {
  Rng rng(3);
  auto split = TrainTestSplit(100, 0.3, &rng);
  EXPECT_EQ(split.test.size(), 30u);
  EXPECT_EQ(split.train.size(), 70u);
  std::vector<bool> seen(100, false);
  for (size_t i : split.train) seen[i] = true;
  for (size_t i : split.test) {
    EXPECT_FALSE(seen[i]);  // Disjoint.
    seen[i] = true;
  }
}

// ------------------------------------------------------- Synthetic data

/// y = 2*x0 - x1 (+ noise); x2 is pure noise.
MlDataset MakeRegressionData(size_t n, double noise, uint64_t seed) {
  Rng rng(seed);
  MlDataset ds;
  ds.task = TaskKind::kRegression;
  ds.x = Matrix(n, 3);
  ds.y.resize(n);
  ds.feature_names = {"x0", "x1", "x2"};
  for (size_t i = 0; i < n; ++i) {
    const double x0 = rng.Normal(), x1 = rng.Normal(), x2 = rng.Normal();
    ds.x.At(i, 0) = x0;
    ds.x.At(i, 1) = x1;
    ds.x.At(i, 2) = x2;
    ds.y[i] = 2.0 * x0 - x1 + rng.Normal(0.0, noise);
  }
  return ds;
}

/// Two blobs separable along x0; x1 noise.
MlDataset MakeClassificationData(size_t n, uint64_t seed, int num_classes = 2) {
  Rng rng(seed);
  MlDataset ds;
  ds.task = TaskKind::kClassification;
  ds.num_classes = num_classes;
  ds.x = Matrix(n, 2);
  ds.y.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const int k = static_cast<int>(rng.UniformInt(num_classes));
    ds.x.At(i, 0) = 3.0 * k + rng.Normal(0.0, 0.5);
    ds.x.At(i, 1) = rng.Normal();
    ds.y[i] = k;
  }
  return ds;
}

// ---------------------------------------------------------------- Trees

TEST(DecisionTreeTest, FitsSeparableClassification) {
  MlDataset ds = MakeClassificationData(300, 1);
  DecisionTree tree({.max_depth = 4});
  std::vector<size_t> all(ds.num_rows());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  Rng rng(2);
  ASSERT_TRUE(tree.Fit(ds.x, ds.y, all, DecisionTree::Criterion::kGini, 2,
                       &rng).ok());
  size_t hits = 0;
  for (size_t i = 0; i < ds.num_rows(); ++i) {
    if (static_cast<int>(tree.PredictValue(ds.x.Row(i))) ==
        static_cast<int>(ds.y[i])) {
      ++hits;
    }
  }
  EXPECT_GT(hits, ds.num_rows() * 95 / 100);
}

TEST(DecisionTreeTest, RegressionReducesVariance) {
  MlDataset ds = MakeRegressionData(400, 0.1, 3);
  DecisionTree tree({.max_depth = 6});
  std::vector<size_t> all(ds.num_rows());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  Rng rng(4);
  ASSERT_TRUE(tree.Fit(ds.x, ds.y, all, DecisionTree::Criterion::kVariance, 0,
                       &rng).ok());
  std::vector<double> pred(ds.num_rows());
  for (size_t i = 0; i < ds.num_rows(); ++i) {
    pred[i] = tree.PredictValue(ds.x.Row(i));
  }
  EXPECT_GT(R2Score(ds.y, pred), 0.7);
}

TEST(DecisionTreeTest, ImportanceFavorsSignalFeatures) {
  MlDataset ds = MakeRegressionData(500, 0.1, 5);
  DecisionTree tree({.max_depth = 6});
  std::vector<size_t> all(ds.num_rows());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  Rng rng(6);
  ASSERT_TRUE(tree.Fit(ds.x, ds.y, all, DecisionTree::Criterion::kVariance, 0,
                       &rng).ok());
  auto imp = tree.FeatureImportance(3);
  EXPECT_GT(imp[0], imp[2]);
  EXPECT_GT(imp[1], imp[2]);
  EXPECT_NEAR(imp[0] + imp[1] + imp[2], 1.0, 1e-9);
}

TEST(DecisionTreeTest, RejectsBadInput) {
  DecisionTree tree;
  Matrix x(2, 1);
  Rng rng(1);
  EXPECT_FALSE(tree.Fit(x, {1.0}, {0}, DecisionTree::Criterion::kVariance, 0,
                        &rng).ok());
  EXPECT_FALSE(tree.Fit(x, {1.0, 2.0}, {}, DecisionTree::Criterion::kVariance,
                        0, &rng).ok());
  EXPECT_FALSE(tree.Fit(x, {1.0, 2.0}, {0, 1},
                        DecisionTree::Criterion::kGini, 1, &rng).ok());
}

TEST(DecisionTreeTest, SingleValueTargetYieldsLeaf) {
  Matrix x(4, 1);
  for (size_t i = 0; i < 4; ++i) x.At(i, 0) = i;
  DecisionTree tree;
  Rng rng(7);
  ASSERT_TRUE(tree.Fit(x, {5, 5, 5, 5}, {0, 1, 2, 3},
                       DecisionTree::Criterion::kVariance, 0, &rng).ok());
  EXPECT_EQ(tree.num_nodes(), 1u);
  EXPECT_DOUBLE_EQ(tree.PredictValue(x.Row(0)), 5.0);
}

// ---------------------------------------------------------------- Forest

ForestOptions SmallForest(int num_trees) {
  ForestOptions o;
  o.num_trees = num_trees;
  return o;
}

TEST(RandomForestTest, ClassifierBeatsChance) {
  MlDataset train = MakeClassificationData(400, 10, 3);
  MlDataset test = MakeClassificationData(200, 11, 3);
  RandomForestClassifier rf(SmallForest(15));
  Rng rng(12);
  ASSERT_TRUE(rf.Fit(train, &rng).ok());
  auto pred = rf.Predict(test.x);
  std::vector<int> pi(pred.begin(), pred.end());
  EXPECT_GT(Accuracy(test.LabelsAsInt(), pi), 0.9);
}

TEST(RandomForestTest, ProbaRowsSumToOne) {
  MlDataset train = MakeClassificationData(200, 13);
  RandomForestClassifier rf(SmallForest(8));
  Rng rng(14);
  ASSERT_TRUE(rf.Fit(train, &rng).ok());
  auto proba = rf.PredictProba(train.x);
  for (const auto& row : proba) {
    double s = 0;
    for (double p : row) {
      EXPECT_GE(p, 0.0);
      s += p;
    }
    EXPECT_NEAR(s, 1.0, 1e-9);
  }
}

TEST(RandomForestTest, RegressorFitsSignal) {
  MlDataset train = MakeRegressionData(500, 0.2, 15);
  MlDataset test = MakeRegressionData(200, 0.2, 16);
  RandomForestRegressor rf(SmallForest(20));
  Rng rng(17);
  ASSERT_TRUE(rf.Fit(train, &rng).ok());
  EXPECT_GT(R2Score(test.y, rf.Predict(test.x)), 0.6);
}

TEST(RandomForestTest, RejectsWrongTask) {
  MlDataset reg = MakeRegressionData(50, 0.1, 18);
  RandomForestClassifier rf;
  Rng rng(19);
  EXPECT_FALSE(rf.Fit(reg, &rng).ok());
}

TEST(RandomForestTest, DeterministicGivenSeed) {
  MlDataset train = MakeClassificationData(150, 20);
  RandomForestClassifier a(SmallForest(5)), b(SmallForest(5));
  Rng ra(21), rb(21);
  ASSERT_TRUE(a.Fit(train, &ra).ok());
  ASSERT_TRUE(b.Fit(train, &rb).ok());
  EXPECT_EQ(a.Predict(train.x), b.Predict(train.x));
}

// ---------------------------------------------------------------- GBM

TEST(GbmTest, RegressorTrainingLossNonIncreasing) {
  MlDataset train = MakeRegressionData(300, 0.3, 22);
  GradientBoostingRegressor gbm({.num_rounds = 30});
  Rng rng(23);
  ASSERT_TRUE(gbm.Fit(train, &rng).ok());
  const auto& loss = gbm.training_loss();
  ASSERT_EQ(loss.size(), 30u);
  for (size_t i = 1; i < loss.size(); ++i) {
    EXPECT_LE(loss[i], loss[i - 1] + 1e-9) << "round " << i;
  }
}

TEST(GbmTest, RegressorGeneralizes) {
  MlDataset train = MakeRegressionData(600, 0.2, 24);
  MlDataset test = MakeRegressionData(300, 0.2, 25);
  GradientBoostingRegressor gbm({.num_rounds = 60});
  Rng rng(26);
  ASSERT_TRUE(gbm.Fit(train, &rng).ok());
  EXPECT_GT(R2Score(test.y, gbm.Predict(test.x)), 0.85);
}

TEST(GbmTest, ClassifierSeparatesBlobs) {
  MlDataset train = MakeClassificationData(400, 27, 3);
  MlDataset test = MakeClassificationData(200, 28, 3);
  GradientBoostingClassifier gbm({.num_rounds = 25});
  Rng rng(29);
  ASSERT_TRUE(gbm.Fit(train, &rng).ok());
  auto pred = gbm.Predict(test.x);
  std::vector<int> pi(pred.begin(), pred.end());
  EXPECT_GT(Accuracy(test.LabelsAsInt(), pi), 0.9);
}

TEST(GbmTest, ClassifierProbaValid) {
  MlDataset train = MakeClassificationData(200, 30);
  GradientBoostingClassifier gbm({.num_rounds = 10});
  Rng rng(31);
  ASSERT_TRUE(gbm.Fit(train, &rng).ok());
  for (const auto& row : gbm.PredictProba(train.x)) {
    double s = 0;
    for (double p : row) {
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
      s += p;
    }
    EXPECT_NEAR(s, 1.0, 1e-9);
  }
}

TEST(GbmTest, LightGbmLiteOptionsAreHistogramFlavoured) {
  GbmOptions opt = LightGbmLiteOptions();
  EXPECT_LE(opt.tree.max_bins, 32);
  EXPECT_LT(opt.subsample, 1.0);
}

TEST(GbmTest, RejectsEmptyData) {
  MlDataset empty;
  empty.task = TaskKind::kRegression;
  GradientBoostingRegressor gbm;
  Rng rng(1);
  EXPECT_FALSE(gbm.Fit(empty, &rng).ok());
}

// ---------------------------------------------------------------- Linear

TEST(RidgeTest, RecoversLinearCoefficients) {
  MlDataset train = MakeRegressionData(500, 0.01, 32);
  RidgeRegressor ridge(1e-6);
  Rng rng(33);
  ASSERT_TRUE(ridge.Fit(train, &rng).ok());
  ASSERT_EQ(ridge.coefficients().size(), 3u);
  EXPECT_NEAR(ridge.coefficients()[0], 2.0, 0.05);
  EXPECT_NEAR(ridge.coefficients()[1], -1.0, 0.05);
  EXPECT_NEAR(ridge.coefficients()[2], 0.0, 0.05);
}

TEST(RidgeTest, ImportanceRanksSignal) {
  MlDataset train = MakeRegressionData(500, 0.1, 34);
  RidgeRegressor ridge;
  Rng rng(35);
  ASSERT_TRUE(ridge.Fit(train, &rng).ok());
  auto imp = ridge.FeatureImportance();
  EXPECT_GT(imp[0], imp[2]);
  EXPECT_GT(imp[1], imp[2]);
}

TEST(RidgeTest, HandlesConstantFeature) {
  MlDataset ds = MakeRegressionData(100, 0.1, 36);
  for (size_t i = 0; i < ds.num_rows(); ++i) ds.x.At(i, 2) = 1.0;
  RidgeRegressor ridge;
  Rng rng(37);
  EXPECT_TRUE(ridge.Fit(ds, &rng).ok());
}

TEST(LogisticTest, SeparatesBlobs) {
  MlDataset train = MakeClassificationData(300, 38);
  MlDataset test = MakeClassificationData(150, 39);
  LogisticRegressor lr;
  Rng rng(40);
  ASSERT_TRUE(lr.Fit(train, &rng).ok());
  auto pred = lr.Predict(test.x);
  std::vector<int> pi(pred.begin(), pred.end());
  EXPECT_GT(Accuracy(test.LabelsAsInt(), pi), 0.95);
}

TEST(LogisticTest, MulticlassWorks) {
  MlDataset train = MakeClassificationData(400, 41, 3);
  LogisticRegressor lr;
  Rng rng(42);
  ASSERT_TRUE(lr.Fit(train, &rng).ok());
  auto pred = lr.Predict(train.x);
  std::vector<int> pi(pred.begin(), pred.end());
  EXPECT_GT(Accuracy(train.LabelsAsInt(), pi), 0.9);
}

// ---------------------------------------------------------------- MO-GBM

TEST(MultiOutputGbmTest, FitsIndependentOutputs) {
  Rng rng(43);
  const size_t n = 300;
  Matrix x(n, 2), y(n, 2);
  for (size_t i = 0; i < n; ++i) {
    const double a = rng.Normal(), b = rng.Normal();
    x.At(i, 0) = a;
    x.At(i, 1) = b;
    y.At(i, 0) = 3.0 * a;
    y.At(i, 1) = -2.0 * b;
  }
  MultiOutputGbm mo({.num_rounds = 40});
  Rng fit_rng(44);
  ASSERT_TRUE(mo.Fit(x, y, &fit_rng).ok());
  EXPECT_EQ(mo.num_outputs(), 2u);
  Matrix pred = mo.Predict(x);
  std::vector<double> y0(n), p0(n), y1(n), p1(n);
  for (size_t i = 0; i < n; ++i) {
    y0[i] = y.At(i, 0);
    p0[i] = pred.At(i, 0);
    y1[i] = y.At(i, 1);
    p1[i] = pred.At(i, 1);
  }
  EXPECT_GT(R2Score(y0, p0), 0.85);
  EXPECT_GT(R2Score(y1, p1), 0.85);
  // PredictRow agrees with Predict.
  auto row0 = mo.PredictRow(x.Row(0));
  EXPECT_NEAR(row0[0], pred.At(0, 0), 1e-9);
  EXPECT_NEAR(row0[1], pred.At(0, 1), 1e-9);
}

TEST(MultiOutputGbmTest, RejectsMismatch) {
  MultiOutputGbm mo;
  Matrix x(3, 1), y(2, 1);
  Rng rng(1);
  EXPECT_FALSE(mo.Fit(x, y, &rng).ok());
  Matrix y2(3, 0);
  EXPECT_FALSE(mo.Fit(x, y2, &rng).ok());
}

// ------------------------------------------------------- Feature scores

TEST(FeatureScoresTest, FisherSeparatedVsNoise) {
  Rng rng(45);
  const size_t n = 400;
  std::vector<double> good(n), noise(n);
  std::vector<int> labels(n);
  for (size_t i = 0; i < n; ++i) {
    labels[i] = static_cast<int>(rng.UniformInt(2));
    good[i] = labels[i] * 4.0 + rng.Normal(0.0, 0.5);
    noise[i] = rng.Normal();
  }
  EXPECT_GT(FisherScore(good, labels, 2), 5.0);
  EXPECT_LT(FisherScore(noise, labels, 2), 0.1);
}

TEST(FeatureScoresTest, MutualInformationOrdersFeatures) {
  Rng rng(46);
  const size_t n = 600;
  std::vector<double> good(n), noise(n);
  std::vector<int> labels(n);
  for (size_t i = 0; i < n; ++i) {
    labels[i] = static_cast<int>(rng.UniformInt(2));
    good[i] = labels[i] * 3.0 + rng.Normal(0.0, 0.5);
    noise[i] = rng.Normal();
  }
  EXPECT_GT(MutualInformation(good, labels, 2),
            MutualInformation(noise, labels, 2) + 0.2);
  EXPECT_DOUBLE_EQ(MutualInformation(std::vector<double>(n, 1.0), labels, 2),
                   0.0);
}

TEST(FeatureScoresTest, DiscretizeTargetBalancedQuantiles) {
  std::vector<double> y;
  for (int i = 0; i < 100; ++i) y.push_back(i);
  auto labels = DiscretizeTarget(y, 4);
  std::vector<int> counts(4, 0);
  for (int l : labels) counts[l]++;
  for (int c : counts) EXPECT_EQ(c, 25);
}

class GbmRoundsTest : public ::testing::TestWithParam<int> {};

TEST_P(GbmRoundsTest, MoreRoundsNeverHurtTrainingLoss) {
  MlDataset train = MakeRegressionData(200, 0.3, 47);
  GradientBoostingRegressor gbm({.num_rounds = GetParam()});
  Rng rng(48);
  ASSERT_TRUE(gbm.Fit(train, &rng).ok());
  const auto& loss = gbm.training_loss();
  EXPECT_LE(loss.back(), loss.front() + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Rounds, GbmRoundsTest,
                         ::testing::Values(5, 10, 20, 40, 80));

}  // namespace
}  // namespace modis
